//! `loki-lint` — workspace static analysis for Loki's privacy invariants.
//!
//! The paper's mitigation is structural: raw answers and quasi-identifiers
//! are obfuscated at the source and never reach the server; the privacy
//! accountant's arithmetic saturates; mechanism noise is reproducible.
//! None of that survives refactoring unless it is mechanically checked.
//! This crate is that check: a dependency-free token-level analyzer with a
//! rule registry ([`rules::registry`]), a config (`loki-lint.toml`), a
//! committed baseline for grandfathered violations (`loki-lint.baseline`),
//! and human/JSON output — run as `cargo run -p loki-lint`.

pub mod baseline;
pub mod config;
pub mod flow;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod tree;

use config::Config;
use source::SourceFile;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::Path;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (`panic-path`, `sensitive-egress`, …).
    pub rule: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Explanation, including the fix direction.
    pub message: String,
    /// Trimmed source line (the baseline matching key).
    pub snippet: String,
}

impl Diagnostic {
    /// The human output format: `file:line: rule-id: message`.
    pub fn render_human(&self) -> String {
        format!("{}:{}: {}: {}", self.file, self.line, self.rule, self.message)
    }
}

/// Runs every enabled rule over one in-memory source file. This is the
/// entry point the fixture tests use; it is [`analyze_sources`] with a
/// single-file "workspace", so workspace rules (e.g. `lock-order`) see
/// the file too.
pub fn analyze_source(
    rel_path: &str,
    crate_name: &str,
    src: &str,
    cfg: &Config,
) -> Vec<Diagnostic> {
    analyze_sources(&[(rel_path, crate_name, src)], cfg)
}

/// Runs every enabled rule — per-file and workspace-level — over a set
/// of in-memory source files.
pub fn analyze_sources(files: &[(&str, &str, &str)], cfg: &Config) -> Vec<Diagnostic> {
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(rel, krate, src)| SourceFile::parse(rel, krate, src))
        .collect();
    let mut out = Vec::new();
    for file in &parsed {
        for rule in rules::registry() {
            if cfg.rule_enabled(rule.id()) {
                rule.check(file, cfg, &mut out);
            }
        }
    }
    for rule in rules::workspace_registry() {
        if cfg.rule_enabled(rule.id()) {
            rule.check(&parsed, cfg, &mut out);
        }
    }
    out
}

/// Walks the workspace at `root` and analyzes every `.rs` file, in
/// deterministic (sorted-path) order.
pub fn analyze_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &cfg.excludes(), &mut files)?;
    files.sort();
    let mut crate_names: HashMap<String, String> = HashMap::new();
    let mut sources: Vec<(String, String, String)> = Vec::new();
    for rel in files {
        let crate_name = crate_name_for(root, &rel, &mut crate_names);
        let src = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, crate_name, src));
    }
    let refs: Vec<(&str, &str, &str)> = sources
        .iter()
        .map(|(r, c, s)| (r.as_str(), c.as_str(), s.as_str()))
        .collect();
    Ok(analyze_sources(&refs, cfg))
}

/// Recursively collects `.rs` paths relative to `root`, skipping hidden
/// directories, `target`, and configured exclude prefixes.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    excludes: &[String],
    out: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        let rel = rel_path(root, &path);
        if excludes.iter().any(|e| rel == *e || rel.starts_with(&format!("{e}/"))) {
            continue;
        }
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_rs_files(root, &path, excludes, out)?;
        } else if ty.is_file() && name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Resolves the Cargo package name owning `rel` (cached per crate dir):
/// `crates/<d>/…` reads `crates/<d>/Cargo.toml`, falling back to
/// `loki-<d>`; anything else belongs to the root facade package.
fn crate_name_for(root: &Path, rel: &str, cache: &mut HashMap<String, String>) -> String {
    let Some(dir) = rel
        .strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
    else {
        return cache
            .entry(String::new())
            .or_insert_with(|| {
                manifest_package_name(&root.join("Cargo.toml"))
                    .unwrap_or_else(|| "loki".to_string())
            })
            .clone();
    };
    cache
        .entry(dir.to_string())
        .or_insert_with(|| {
            manifest_package_name(&root.join("crates").join(dir).join("Cargo.toml"))
                .unwrap_or_else(|| format!("loki-{dir}"))
        })
        .clone()
}

/// Extracts `name = "…"` from a manifest's `[package]` section.
fn manifest_package_name(manifest: &Path) -> Option<String> {
    let text = fs::read_to_string(manifest).ok()?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if !in_package {
            continue;
        }
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                return Some(value.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> Config {
        Config::from_toml("").unwrap()
    }

    fn rules_hit(diags: &[Diagnostic]) -> Vec<&'static str> {
        let mut rules: Vec<&'static str> = diags.iter().map(|d| d.rule).collect();
        rules.dedup();
        rules
    }

    #[test]
    fn sensitive_type_in_server_pub_fn_is_flagged() {
        let diags = analyze_source(
            "crates/server/src/api.rs",
            "loki-server",
            "pub fn export(w: WorkerId) -> BirthDate { todo() }\n",
            &cfg(),
        );
        assert_eq!(rules_hit(&diags), vec!["sensitive-egress"]);
        assert_eq!(diags.len(), 2, "{diags:?}");
    }

    #[test]
    fn sensitive_type_in_client_is_fine() {
        let diags = analyze_source(
            "crates/client/src/lib.rs",
            "loki-client",
            "pub fn profile() -> WorkerProfile { make() }\n",
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn pub_crate_visibility_is_not_egress() {
        let diags = analyze_source(
            "crates/server/src/internal.rs",
            "loki-server",
            "pub(crate) fn keep(w: &WorkerId) {}\n",
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn sensitive_derive_outside_client_is_flagged() {
        let diags = analyze_source(
            "crates/core/src/types.rs",
            "loki-core",
            "#[derive(Debug, Clone)]\nstruct QuasiIdentifier { zip: String }\n",
            &cfg(),
        );
        assert_eq!(rules_hit(&diags), vec!["sensitive-egress"]);
        assert!(diags[0].message.contains("Debug"), "{diags:?}");
    }

    #[test]
    fn unseeded_rng_in_dp_is_flagged() {
        let diags = analyze_source(
            "crates/dp/src/mechanisms/laplace.rs",
            "loki-dp",
            "fn sample() -> f64 { rand::thread_rng().gen() }\n",
            &cfg(),
        );
        assert_eq!(rules_hit(&diags), vec!["unseeded-rng"]);
    }

    #[test]
    fn unseeded_rng_outside_dp_is_ignored() {
        let diags = analyze_source(
            "crates/bench/src/lib.rs",
            "loki-bench",
            "fn sample() -> f64 { rand::thread_rng().gen() }\n",
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn float_eq_on_budget_is_flagged_but_ordering_is_not() {
        let src = "fn check(epsilon: f64, budget: f64) -> bool {\n\
                       if epsilon == budget { return true; }\n\
                       epsilon <= budget\n\
                   }\n";
        let diags = analyze_source("crates/dp/src/x.rs", "loki-dp", src, &cfg());
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].rule, "float-eq-budget");
        assert_eq!(diags[0].line, 2);
    }

    #[test]
    fn float_eq_on_unrelated_floats_is_ignored() {
        let diags = analyze_source(
            "crates/dp/src/x.rs",
            "loki-dp",
            "fn f(k: usize, n: usize) -> bool { k == n }\n",
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn panic_paths_in_net_are_flagged() {
        let src = "fn serve(buf: &[u8], n: usize) {\n\
                       let h = parse(buf).unwrap();\n\
                       let b = &buf[..n];\n\
                       panic!(\"bad\");\n\
                       let v = opt.unwrap_or_default();\n\
                   }\n";
        let diags = analyze_source("crates/net/src/x.rs", "loki-net", src, &cfg());
        let lines: Vec<u32> = diags.iter().map(|d| d.line).collect();
        assert_eq!(lines, vec![2, 3, 4], "{diags:?}");
        assert!(diags.iter().all(|d| d.rule == "panic-path"));
    }

    #[test]
    fn panic_paths_in_tests_are_ignored() {
        let src = "#[cfg(test)]\nmod tests {\n fn t() { x.unwrap(); a[0]; }\n}\n";
        let diags = analyze_source("crates/net/src/x.rs", "loki-net", src, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn lint_allow_suppresses() {
        let src = "fn f(xs: &[u8]) -> u8 {\n\
                       // lint:allow panic-path -- length checked by caller\n\
                       xs[0]\n\
                   }\n";
        let diags = analyze_source("crates/net/src/x.rs", "loki-net", src, &cfg());
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn unchecked_budget_arith_flagged_in_ledger() {
        let src = "fn p95(losses: &[f64], n: usize) -> f64 { losses[n - 1] }\n";
        let diags = analyze_source(
            "crates/core/src/ledger.rs",
            "loki-core",
            src,
            &cfg(),
        );
        assert_eq!(rules_hit(&diags), vec!["unchecked-budget-arith"], "{diags:?}");
    }

    #[test]
    fn saturating_arith_is_clean() {
        let src = "fn p95(losses: &[f64], n: usize) -> Option<f64> {\n\
                       losses.get(n.saturating_sub(1)).copied()\n\
                   }\n";
        let diags = analyze_source(
            "crates/core/src/ledger.rs",
            "loki-core",
            src,
            &cfg(),
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn disabled_rule_is_skipped() {
        let cfg = Config::from_toml("[rules.panic-path]\nenabled = false\n").unwrap();
        let diags = analyze_source(
            "crates/net/src/x.rs",
            "loki-net",
            "fn f() { x.unwrap(); }\n",
            &cfg,
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
