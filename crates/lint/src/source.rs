//! Per-file analysis context.
//!
//! A [`SourceFile`] bundles everything a rule needs to inspect one file:
//! the token stream, which lines fall inside `#[cfg(test)]` modules or
//! `tests/`-style paths (rules skip those by default), the raw lines (for
//! diagnostic snippets), and the inline `// lint:allow <rule-id>`
//! suppressions.

use crate::lexer::{lex, Tok};
use std::ops::Range;
use std::path::Path;

/// One analyzed source file.
pub struct SourceFile {
    /// Path relative to the workspace root, with `/` separators.
    pub rel_path: String,
    /// Cargo package name owning this file (e.g. `loki-dp`).
    pub crate_name: String,
    /// Token stream.
    pub toks: Vec<Tok>,
    /// Raw source lines (for snippets), 0-indexed by `line - 1`.
    pub lines: Vec<String>,
    /// 1-based line ranges covered by `#[cfg(test)]` items.
    test_spans: Vec<Range<u32>>,
    /// Whether the *whole file* is test-like (under `tests/`, `benches/`,
    /// `examples/`).
    all_test: bool,
    /// `(line, rule-id)` pairs from `// lint:allow <rule-id>` comments.
    allows: Vec<(u32, String)>,
}

impl SourceFile {
    /// Parses `src` into an analysis context.
    pub fn parse(rel_path: &str, crate_name: &str, src: &str) -> SourceFile {
        let out = lex(src);
        let test_spans = find_test_spans(&out.toks);
        let allows = find_allows(&out.line_comments);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            toks: out.toks,
            lines: src.lines().map(str::to_string).collect(),
            test_spans,
            all_test: path_is_testlike(rel_path),
            allows,
        }
    }

    /// Whether `line` (1-based) is test-only code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.all_test || self.test_spans.iter().any(|r| r.contains(&line))
    }

    /// Whether rule `rule_id` is suppressed at `line` — a matching
    /// `// lint:allow` on the same line or the line directly above.
    pub fn is_allowed(&self, rule_id: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|(l, id)| id == rule_id && (*l == line || *l + 1 == line))
    }

    /// The trimmed source text of `line` (1-based), for snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Whether any path component marks the file as test/bench/example code.
fn path_is_testlike(rel_path: &str) -> bool {
    Path::new(rel_path).components().any(|c| {
        matches!(
            c.as_os_str().to_str(),
            Some("tests") | Some("benches") | Some("examples")
        )
    })
}

/// Scans `// lint:allow id1 id2` / `// lint:allow id1, id2` directives.
fn find_allows(comments: &[(u32, String)]) -> Vec<(u32, String)> {
    let mut allows = Vec::new();
    for (line, text) in comments {
        let Some(rest) = text.trim().strip_prefix("lint:allow") else {
            continue;
        };
        for id in rest.split([',', ' ']).filter(|s| !s.is_empty()) {
            allows.push((*line, id.to_string()));
        }
    }
    allows
}

/// Finds the 1-based line ranges of items annotated `#[cfg(test)]`.
///
/// After each `#[cfg(test)]` attribute, the covered span runs from the
/// attribute to the close of the item's brace block (tracking nesting), or
/// to the terminating `;` for block-less items.
fn find_test_spans(toks: &[Tok]) -> Vec<Range<u32>> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if let Some(after_attr) = match_cfg_test_attr(toks, i) {
            let start_line = toks[i].line;
            let end = item_end(toks, after_attr);
            let end_line = toks
                .get(end.saturating_sub(1))
                .map_or(start_line, |t| t.line);
            spans.push(start_line..end_line + 1);
            i = end.max(after_attr);
        } else {
            i += 1;
        }
    }
    spans
}

/// If `toks[i..]` begins `# [ cfg ( test` (with optional extra clauses up
/// to the closing `]`), returns the index just past the attribute's `]`.
fn match_cfg_test_attr(toks: &[Tok], i: usize) -> Option<usize> {
    if !toks.get(i)?.is_op("#") || !toks.get(i + 1)?.is_op("[") {
        return None;
    }
    if !toks.get(i + 2)?.is_ident("cfg") || !toks.get(i + 3)?.is_op("(") {
        return None;
    }
    // Require `test` somewhere inside the cfg predicate — covers plain
    // `cfg(test)` and `cfg(any(test, feature = "…"))`.
    let mut j = i + 4;
    let mut depth = 1i32; // inside the `(`
    let mut saw_test = false;
    while let Some(t) = toks.get(j) {
        if t.is_op("(") {
            depth += 1;
        } else if t.is_op(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("test") {
            saw_test = true;
        }
        j += 1;
    }
    if !saw_test {
        return None;
    }
    // Expect the attribute's closing `]` after the cfg `)`.
    let close = toks.get(j + 1)?;
    if close.is_op("]") {
        Some(j + 2)
    } else {
        None
    }
}

/// Returns the token index just past the item starting at `i` (skipping
/// further attributes), i.e. past its matched `{…}` block or past `;`.
fn item_end(toks: &[Tok], mut i: usize) -> usize {
    // Skip any further attributes (`#[test]`, `#[allow(…)]`, …).
    while i + 1 < toks.len() && toks[i].is_op("#") && toks[i + 1].is_op("[") {
        let mut depth = 0i32;
        let mut j = i + 1;
        while let Some(t) = toks.get(j) {
            if t.is_op("[") {
                depth += 1;
            } else if t.is_op("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    // Walk to the item's opening `{` or a bare `;` (e.g. `mod tests;`),
    // skipping braces that belong to expressions is unnecessary here: the
    // first `{` after a mod/fn/impl header *is* the body.
    let mut j = i;
    while let Some(t) = toks.get(j) {
        if t.is_op(";") {
            return j + 1;
        }
        if t.is_op("{") {
            let mut depth = 0i32;
            let mut k = j;
            while let Some(t2) = toks.get(k) {
                if t2.is_op("{") {
                    depth += 1;
                } else if t2.is_op("}") {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                k += 1;
            }
            return k;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_span_covers_body() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_any_test_is_recognized() {
        let src = "#[cfg(any(test, feature = \"bench\"))]\nmod helpers { fn h() {} }\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_span() {
        let src = "#[cfg(feature = \"extra\")]\nmod extra { fn f() {} }\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn attr_between_cfg_and_item_is_skipped() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod tests {\n fn t() {}\n}\nfn live() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn integration_test_paths_are_all_test() {
        let f = SourceFile::parse("tests/end_to_end.rs", "loki", "fn f() {}\n");
        assert!(f.is_test_line(1));
        let f = SourceFile::parse("crates/dp/benches/mech.rs", "loki-dp", "fn f() {}\n");
        assert!(f.is_test_line(1));
        let f = SourceFile::parse("crates/dp/src/lib.rs", "loki-dp", "fn f() {}\n");
        assert!(!f.is_test_line(1));
    }

    #[test]
    fn allow_directive_same_and_next_line() {
        let src = "let a = x.unwrap(); // lint:allow panic-path\n\
                   // lint:allow float-eq-budget, panic-path\n\
                   let b = y.unwrap();\n\
                   let c = z.unwrap();\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(f.is_allowed("panic-path", 1));
        assert!(f.is_allowed("panic-path", 3));
        assert!(f.is_allowed("float-eq-budget", 3));
        assert!(!f.is_allowed("panic-path", 4));
        assert!(!f.is_allowed("unseeded-rng", 1));
    }

    #[test]
    fn snippet_is_trimmed() {
        let f = SourceFile::parse("x.rs", "x", "   let a = 1;  \n");
        assert_eq!(f.snippet(1), "let a = 1;");
        assert_eq!(f.snippet(99), "");
    }
}
