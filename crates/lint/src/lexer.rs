//! A small Rust tokenizer.
//!
//! `loki-lint` analyses source *lexically*: rules match on token patterns
//! rather than a full AST. The tokenizer therefore has to be exactly right
//! about the things that would otherwise produce false positives — string
//! literals (including raw strings), comments (including nested block
//! comments), lifetimes vs. char literals, and float literals with signed
//! exponents (so `1.5e-3` never emits a spurious `-` operator).
//!
//! Line comments are preserved separately so the allow-directive scanner
//! (`// lint:allow <rule-id>`) can see them.

/// Token classes the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime,
    /// Numeric literal.
    Number,
    /// String, byte-string, or char literal.
    Str,
    /// Operator / punctuation, maximal-munch (`==`, `..=`, `::`, …).
    Op,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token text (operators keep their full spelling).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the operator `s`.
    pub fn is_op(&self, s: &str) -> bool {
        self.kind == TokKind::Op && self.text == s
    }
}

/// Tokenizer output: tokens plus the line comments (for directives).
#[derive(Debug, Default)]
pub struct LexOutput {
    /// All tokens in source order.
    pub toks: Vec<Tok>,
    /// `(line, text)` of every `//` comment, text without the slashes.
    pub line_comments: Vec<(u32, String)>,
}

/// Three-char then two-char operators, tried in order (maximal munch).
const OPS3: &[&str] = &["<<=", ">>=", "..=", "..."];
const OPS2: &[&str] = &[
    "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=",
    "/=", "%=", "^=", "&=", "|=", "<<", ">>", "..",
];

/// Tokenizes `src`. Never fails: unexpected bytes are skipped, unclosed
/// literals run to end of input — a linter must degrade, not abort.
pub fn lex(src: &str) -> LexOutput {
    let chars: Vec<char> = src.chars().collect();
    let mut out = LexOutput::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push = |out: &mut LexOutput, kind, text: String, line| {
        out.toks.push(Tok { kind, text, line });
    };

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if chars.get(i + 1) == Some(&'/') => {
                let start = i + 2;
                let mut j = start;
                while j < chars.len() && chars[j] != '\n' {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                out.line_comments.push((line, text));
                i = j;
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Nested block comment.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < chars.len() && depth > 0 {
                    if chars[j] == '\n' {
                        line += 1;
                        j += 1;
                    } else if chars[j] == '/' && chars.get(j + 1) == Some(&'*') {
                        depth += 1;
                        j += 2;
                    } else if chars[j] == '*' && chars.get(j + 1) == Some(&'/') {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            '"' => {
                let (j, newlines) = scan_string(&chars, i);
                push(&mut out, TokKind::Str, String::from("\"…\""), line);
                line += newlines;
                i = j;
            }
            'r' | 'b' if is_raw_or_byte_string(&chars, i) => {
                let (j, newlines) = scan_raw_or_byte(&chars, i);
                push(&mut out, TokKind::Str, String::from("\"…\""), line);
                line += newlines;
                i = j;
            }
            // Byte-char literal `b'x'` / `b'\n'`: one opaque Str token.
            // Without this arm the `b` lexes as a stray identifier, which
            // breaks token-pattern rules and the token-tree item scanner.
            'b' if chars.get(i + 1) == Some(&'\'') => {
                let (j, newlines) = scan_string(&chars, i + 1);
                push(&mut out, TokKind::Str, String::from("b'…'"), line);
                line += newlines;
                i = j;
            }
            // Raw identifier `r#type`: one Ident token carrying the full
            // `r#…` spelling. Without this arm the escaped keyword leaks
            // as a bare keyword token (`r#fn` → `fn`), which would start a
            // phantom item in the tree parser.
            'r' if chars.get(i + 1) == Some(&'#')
                && chars.get(i + 2).is_some_and(|&c| is_ident_start(c)) =>
            {
                let mut j = i + 3;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                push(&mut out, TokKind::Ident, text, line);
                i = j;
            }
            '\'' => {
                // Lifetime or char literal.
                if is_lifetime(&chars, i) {
                    let mut j = i + 1;
                    while j < chars.len() && is_ident_continue(chars[j]) {
                        j += 1;
                    }
                    let text: String = chars[i..j].iter().collect();
                    push(&mut out, TokKind::Lifetime, text, line);
                    i = j;
                } else {
                    let (j, newlines) = scan_string(&chars, i); // '…' scans like "…"
                    push(&mut out, TokKind::Str, String::from("'…'"), line);
                    line += newlines;
                    i = j;
                }
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < chars.len() && is_ident_continue(chars[j]) {
                    j += 1;
                }
                let text: String = chars[i..j].iter().collect();
                push(&mut out, TokKind::Ident, text, line);
                i = j;
            }
            c if c.is_ascii_digit() => {
                let j = scan_number(&chars, i);
                let text: String = chars[i..j].iter().collect();
                push(&mut out, TokKind::Number, text, line);
                i = j;
            }
            _ => {
                let rest = &chars[i..];
                let text = match_op(rest);
                let len = text.chars().count();
                push(&mut out, TokKind::Op, text, line);
                i += len;
            }
        }
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// `'` starts a lifetime when followed by an identifier that is *not*
/// closed by another `'` (which would make it a char like `'a'`).
fn is_lifetime(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some(&c) if is_ident_start(c) => {
            // 'static, 'a — lifetime unless the very next char is a quote.
            let mut j = i + 2;
            while j < chars.len() && is_ident_continue(chars[j]) {
                j += 1;
            }
            chars.get(j) != Some(&'\'')
        }
        _ => false,
    }
}

/// Scans a `"…"` or `'…'` literal starting at the quote. Returns
/// `(index after close, newlines consumed)`.
fn scan_string(chars: &[char], i: usize) -> (usize, u32) {
    let quote = chars[i];
    let mut j = i + 1;
    let mut newlines = 0u32;
    while j < chars.len() {
        match chars[j] {
            '\\' => {
                // An escaped newline (line continuation) still ends a line.
                if chars.get(j + 1) == Some(&'\n') {
                    newlines += 1;
                }
                j += 2;
            }
            '\n' => {
                newlines += 1;
                j += 1;
            }
            c if c == quote => return (j + 1, newlines),
            _ => j += 1,
        }
    }
    (j, newlines)
}

/// Whether `r`/`b` at `i` begins a raw/byte string (`r"`, `r#`, `b"`, `br`).
fn is_raw_or_byte_string(chars: &[char], i: usize) -> bool {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        if chars.get(j) == Some(&'"') {
            return true;
        }
        if chars.get(j) != Some(&'r') {
            return false;
        }
    }
    if chars.get(j) == Some(&'r') {
        j += 1;
        while chars.get(j) == Some(&'#') {
            j += 1;
        }
        return chars.get(j) == Some(&'"');
    }
    false
}

/// Scans `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` starting at `r`/`b`.
fn scan_raw_or_byte(chars: &[char], i: usize) -> (usize, u32) {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
    }
    let raw = chars.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0usize;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // At the opening quote.
    if !raw {
        let (end, newlines) = scan_string(chars, j);
        return (end, newlines);
    }
    j += 1; // past '"'
    let mut newlines = 0u32;
    while j < chars.len() {
        if chars[j] == '\n' {
            newlines += 1;
            j += 1;
            continue;
        }
        if chars[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && chars.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, newlines);
            }
        }
        j += 1;
    }
    (j, newlines)
}

/// Scans a numeric literal, including `1_000`, `0xff`, `1.5`, `1.5e-3`,
/// and suffixes (`1u32`, `1.0f64`). Does not swallow range dots (`1..2`).
fn scan_number(chars: &[char], i: usize) -> usize {
    let mut j = i;
    let mut last = '\0';
    while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
        last = chars[j];
        j += 1;
    }
    // Fraction: only when the dot is followed by a digit (not `1..2`,
    // not `1.max(…)`).
    if chars.get(j) == Some(&'.') && chars.get(j + 1).is_some_and(char::is_ascii_digit) {
        j += 1;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            last = chars[j];
            j += 1;
        }
    }
    // Signed exponent: `1.5e-3` / `2E+10`.
    if (last == 'e' || last == 'E')
        && matches!(chars.get(j), Some(&'+') | Some(&'-'))
        && chars.get(j + 1).is_some_and(char::is_ascii_digit)
    {
        j += 1;
        while j < chars.len() && (chars[j].is_ascii_alphanumeric() || chars[j] == '_') {
            j += 1;
        }
    }
    j
}

/// Maximal-munch operator match at the head of `rest`.
fn match_op(rest: &[char]) -> String {
    let take = |n: usize| rest.iter().take(n).collect::<String>();
    if rest.len() >= 3 {
        let three = take(3);
        if OPS3.contains(&three.as_str()) {
            return three;
        }
    }
    if rest.len() >= 2 {
        let two = take(2);
        if OPS2.contains(&two.as_str()) {
            return two;
        }
    }
    take(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_ops_numbers() {
        assert_eq!(
            texts("let x = a + 42;"),
            vec!["let", "x", "=", "a", "+", "42", ";"]
        );
    }

    #[test]
    fn two_char_ops_are_single_tokens() {
        assert_eq!(texts("a == b != c"), vec!["a", "==", "b", "!=", "c"]);
        assert_eq!(texts("x += 1"), vec!["x", "+=", "1"]);
        assert_eq!(texts("a::b..=c"), vec!["a", "::", "b", "..=", "c"]);
    }

    #[test]
    fn exponent_minus_is_not_an_operator() {
        assert_eq!(texts("let eps = 1.5e-3;"), vec!["let", "eps", "=", "1.5e-3", ";"]);
        assert_eq!(texts("2E+10"), vec!["2E+10"]);
    }

    #[test]
    fn range_dots_not_swallowed_by_number() {
        assert_eq!(texts("0..10"), vec!["0", "..", "10"]);
        assert_eq!(texts("1.5..2.5"), vec!["1.5", "..", "2.5"]);
    }

    #[test]
    fn strings_and_chars_are_opaque() {
        let toks = lex("let s = \"a == b // not a comment\"; let c = 'x';").toks;
        let strs: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 2);
        // Nothing inside the string leaked out as tokens.
        assert!(!toks.iter().any(|t| t.is_op("==")));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = lex(r####"let s = r#"contains "quotes" and == ops"#;"####).toks;
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(!toks.iter().any(|t| t.is_op("==")));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> &'a str { x }").toks;
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            3
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 0);
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let out = lex("a\n// lint:allow panic-path\nb /* block\nstill block */ c");
        assert_eq!(out.line_comments.len(), 1);
        assert_eq!(out.line_comments[0].0, 2);
        assert!(out.line_comments[0].1.contains("lint:allow"));
        let c = out.toks.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(texts("a /* x /* y */ z */ b"), vec!["a", "b"]);
    }

    #[test]
    fn line_numbers_track_strings() {
        let out = lex("let a = \"multi\nline\";\nlet b = 1;");
        let b = out.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }

    #[test]
    fn byte_char_literals_are_one_opaque_token() {
        // Regression: `b'x'` used to lex as Ident("b") + char literal.
        assert_eq!(texts("let x = b'x';"), vec!["let", "x", "=", "b'…'", ";"]);
        let toks = lex("match c { b'a'..=b'z' => 1, _ => 0 }").toks;
        assert!(!toks.iter().any(|t| t.is_ident("b")), "{toks:?}");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 2);
        // Escapes, including an escaped quote and a brace payload (the
        // brace must stay opaque to the token-tree parser).
        assert_eq!(texts(r"f(b'\n', b'\'', b'{')").len(), 8); // f ( s , s , s )
        assert_eq!(
            lex(r"f(b'\n', b'\'', b'{')")
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Str)
                .count(),
            3
        );
    }

    #[test]
    fn raw_identifiers_are_one_token_and_not_keywords() {
        // Regression: `r#type` used to lex as Ident("r") + `#` + Ident("type"),
        // leaking the escaped keyword as a real keyword token.
        assert_eq!(texts("let t = r#type;"), vec!["let", "t", "=", "r#type", ";"]);
        let toks = lex("let f = r#fn; fn real() {}").toks;
        assert_eq!(
            toks.iter().filter(|t| t.is_ident("fn")).count(),
            1,
            "only the genuine `fn` keyword remains: {toks:?}"
        );
        // Raw strings still lex as strings, not raw identifiers.
        let toks = lex(r####"let s = r#"text"#;"####).toks;
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn line_numbers_track_string_continuations() {
        let out = lex("let a = \"one \\\n  two\";\nlet b = 1;");
        let b = out.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
