//! The committed violation baseline (`loki-lint.baseline`).
//!
//! Pre-existing violations are grandfathered: the baseline records each one
//! as a `(rule, file, snippet)` triple, and a run only fails on findings
//! *not* covered by the baseline. Matching is a multiset match on that
//! triple — deliberately **not** on line numbers, so unrelated edits that
//! shift code up or down don't invalidate the whole file's entries. Two
//! identical snippets in one file need two baseline entries.
//!
//! File format: one entry per line, tab-separated
//! `rule-id<TAB>path<TAB>snippet`; `#` lines and blanks are ignored.

use crate::Diagnostic;
use std::collections::HashMap;
use std::fmt::Write as _;

/// One grandfathered violation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BaselineEntry {
    /// Rule id (`panic-path`, …).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// Trimmed source line of the violation.
    pub snippet: String,
}

/// The parsed baseline.
#[derive(Debug, Default)]
pub struct Baseline {
    entries: Vec<BaselineEntry>,
}

/// Result of diffing current findings against the baseline.
#[derive(Debug, Default)]
pub struct BaselineDiff {
    /// Findings not covered by any (unconsumed) baseline entry.
    pub new: Vec<Diagnostic>,
    /// Baseline entries no longer matched by any finding — fixed or moved
    /// violations whose entries should be removed.
    pub stale: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses baseline text. Malformed lines (fewer than three fields) are
    /// reported as errors rather than silently dropped — a truncated
    /// baseline must not look like a smaller one.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(file), Some(snippet)) => entries.push(BaselineEntry {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    snippet: snippet.to_string(),
                }),
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `rule<TAB>file<TAB>snippet`",
                        idx + 1
                    ))
                }
            }
        }
        Ok(Baseline { entries })
    }

    /// Number of grandfathered violations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baseline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Diffs `findings` against this baseline (multiset semantics).
    pub fn diff(&self, findings: &[Diagnostic]) -> BaselineDiff {
        let mut budget: HashMap<BaselineEntry, usize> = HashMap::new();
        for e in &self.entries {
            *budget.entry(e.clone()).or_insert(0) += 1;
        }
        let mut diff = BaselineDiff::default();
        for d in findings {
            let key = BaselineEntry {
                rule: d.rule.to_string(),
                file: d.file.clone(),
                snippet: d.snippet.clone(),
            };
            match budget.get_mut(&key) {
                Some(n) if *n > 0 => *n -= 1,
                _ => diff.new.push(d.clone()),
            }
        }
        let mut stale: Vec<BaselineEntry> = budget
            .into_iter()
            .flat_map(|(e, n)| std::iter::repeat(e).take(n))
            .collect();
        stale.sort();
        diff.stale = stale;
        diff
    }

    /// Renders `findings` as baseline text (the `--write-baseline` output).
    pub fn render(findings: &[Diagnostic]) -> String {
        let mut out = String::from(
            "# loki-lint baseline — grandfathered violations.\n\
             # One entry per line: rule-id<TAB>path<TAB>snippet.\n\
             # Regenerate with: cargo run -p loki-lint -- --write-baseline\n",
        );
        let mut sorted: Vec<&Diagnostic> = findings.iter().collect();
        sorted.sort_by(|a, b| {
            (a.rule, &a.file, a.line).cmp(&(b.rule, &b.file, b.line))
        });
        for d in sorted {
            // Tabs inside a snippet would corrupt the format; collapse them.
            let snippet = d.snippet.replace('\t', " ");
            let _ = writeln!(out, "{}\t{}\t{}", d.rule, d.file, snippet);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: &'static str, file: &str, line: u32, snippet: &str) -> Diagnostic {
        Diagnostic {
            rule,
            file: file.to_string(),
            line,
            message: String::from("m"),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn round_trip_and_exact_match() {
        let findings = vec![
            diag("panic-path", "crates/net/src/router.rs", 72, "assert!(p);"),
            diag("panic-path", "crates/server/src/store.rs", 119, "assert!(b > 0.0);"),
        ];
        let text = Baseline::render(&findings);
        let base = Baseline::parse(&text).unwrap();
        assert_eq!(base.len(), 2);
        let diff = base.diff(&findings);
        assert!(diff.new.is_empty());
        assert!(diff.stale.is_empty());
    }

    #[test]
    fn line_drift_does_not_invalidate() {
        let base = Baseline::parse("panic-path\ta.rs\tx.unwrap();\n").unwrap();
        let moved = vec![diag("panic-path", "a.rs", 999, "x.unwrap();")];
        let diff = base.diff(&moved);
        assert!(diff.new.is_empty() && diff.stale.is_empty());
    }

    #[test]
    fn new_and_stale_detected() {
        let base = Baseline::parse("panic-path\ta.rs\tx.unwrap();\n").unwrap();
        let findings = vec![diag("panic-path", "a.rs", 5, "y.unwrap();")];
        let diff = base.diff(&findings);
        assert_eq!(diff.new.len(), 1);
        assert_eq!(diff.stale.len(), 1);
        assert_eq!(diff.stale[0].snippet, "x.unwrap();");
    }

    #[test]
    fn duplicate_snippets_are_multiset_matched() {
        let base = Baseline::parse(
            "panic-path\ta.rs\tx.unwrap();\npanic-path\ta.rs\tx.unwrap();\n",
        )
        .unwrap();
        let one = vec![diag("panic-path", "a.rs", 1, "x.unwrap();")];
        let diff = base.diff(&one);
        assert!(diff.new.is_empty());
        assert_eq!(diff.stale.len(), 1, "second copy is stale");
        let three = vec![
            diag("panic-path", "a.rs", 1, "x.unwrap();"),
            diag("panic-path", "a.rs", 2, "x.unwrap();"),
            diag("panic-path", "a.rs", 3, "x.unwrap();"),
        ];
        let diff = base.diff(&three);
        assert_eq!(diff.new.len(), 1, "third copy is new");
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(Baseline::parse("panic-path only-two-fields\n").is_err());
        assert!(Baseline::parse("# comment\n\n").unwrap().is_empty());
    }
}
