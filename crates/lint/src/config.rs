//! Linter configuration: `loki-lint.toml`.
//!
//! The config is a small TOML subset parsed in-tree (the linter is
//! deliberately dependency-free). Supported syntax:
//!
//! * `[section]` and `[section.subsection]` headers (bare keys, which TOML
//!   allows to contain `-`),
//! * `key = "string"`, `key = true|false`,
//! * `key = ["a", "b", …]`, including multi-line arrays,
//! * `#` comments and blank lines.
//!
//! Every rule reads its knobs through [`Config::list`] /
//! [`Config::flag`], which fall back to compiled-in defaults so the tool
//! also works with no config file at all.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed config value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An array of quoted strings.
    List(Vec<String>),
    /// A boolean.
    Bool(bool),
}

/// A config parse failure, with the offending line number.
#[derive(Debug)]
pub struct ConfigError {
    /// 1-based line in the config file.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

/// The full linter configuration.
#[derive(Debug, Default)]
pub struct Config {
    /// `section -> key -> value`; the section for `[rules.panic-path]` is
    /// the string `rules.panic-path`.
    sections: BTreeMap<String, BTreeMap<String, Value>>,
}

impl Config {
    /// Parses a config from TOML-subset text.
    pub fn from_toml(text: &str) -> Result<Config, ConfigError> {
        let mut sections: BTreeMap<String, BTreeMap<String, Value>> = BTreeMap::new();
        let mut current = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx as u32 + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(name) = header.strip_suffix(']') else {
                    return Err(err(lineno, "unterminated section header"));
                };
                current = name.trim().trim_matches('"').to_string();
                sections.entry(current.clone()).or_default();
                continue;
            }
            let Some((key, rest)) = line.split_once('=') else {
                return Err(err(lineno, "expected `key = value`"));
            };
            let key = key.trim().trim_matches('"').to_string();
            let mut rest = rest.trim().to_string();
            // Multi-line array: keep consuming lines until the `]`.
            if rest.starts_with('[') && !rest.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    let cont = strip_comment(cont).trim().to_string();
                    rest.push(' ');
                    rest.push_str(&cont);
                    if cont.ends_with(']') {
                        break;
                    }
                }
            }
            let value = parse_value(&rest).ok_or_else(|| {
                err(lineno, &format!("unsupported value syntax: `{rest}`"))
            })?;
            sections.entry(current.clone()).or_default().insert(key, value);
        }
        Ok(Config { sections })
    }

    /// List-valued knob for `[rules.<rule>] <key>`, with fallback chain:
    /// config value → `default`.
    pub fn list(&self, rule: &str, key: &str, default: &[&str]) -> Vec<String> {
        self.raw(&format!("rules.{rule}"), key)
            .and_then(|v| match v {
                Value::List(items) => Some(items.clone()),
                Value::Str(s) => Some(vec![s.clone()]),
                Value::Bool(_) => None,
            })
            .unwrap_or_else(|| default.iter().map(|s| s.to_string()).collect())
    }

    /// Boolean knob for `[rules.<rule>] <key>`.
    pub fn flag(&self, rule: &str, key: &str, default: bool) -> bool {
        match self.raw(&format!("rules.{rule}"), key) {
            Some(Value::Bool(b)) => *b,
            _ => default,
        }
    }

    /// Whether a rule is enabled (`[rules.<rule>] enabled = false` opts out).
    pub fn rule_enabled(&self, rule: &str) -> bool {
        self.flag(rule, "enabled", true)
    }

    /// Top-level `[lint] exclude` path prefixes (workspace-relative).
    pub fn excludes(&self) -> Vec<String> {
        self.raw("lint", "exclude")
            .and_then(|v| match v {
                Value::List(items) => Some(items.clone()),
                _ => None,
            })
            .unwrap_or_else(|| vec!["target".to_string()])
    }

    fn raw(&self, section: &str, key: &str) -> Option<&Value> {
        self.sections.get(section)?.get(key)
    }
}

fn err(line: u32, message: &str) -> ConfigError {
    ConfigError {
        line,
        message: message.to_string(),
    }
}

/// Strips a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

fn parse_value(text: &str) -> Option<Value> {
    let text = text.trim();
    if text == "true" {
        return Some(Value::Bool(true));
    }
    if text == "false" {
        return Some(Value::Bool(false));
    }
    if let Some(inner) = text.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Some(Value::Str(inner.to_string()));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let mut items = Vec::new();
        for part in inner.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let s = part.strip_prefix('"')?.strip_suffix('"')?;
            items.push(s.to_string());
        }
        return Some(Value::List(items));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_values() {
        let cfg = Config::from_toml(
            "# top comment\n\
             [lint]\n\
             exclude = [\"target\", \"crates/lint/tests/fixtures\"]\n\
             \n\
             [rules.panic-path]\n\
             enabled = true\n\
             crates = [\"loki-net\", \"loki-server\"] # trailing comment\n",
        )
        .unwrap();
        assert_eq!(
            cfg.excludes(),
            vec!["target".to_string(), "crates/lint/tests/fixtures".to_string()]
        );
        assert!(cfg.rule_enabled("panic-path"));
        assert_eq!(
            cfg.list("panic-path", "crates", &[]),
            vec!["loki-net".to_string(), "loki-server".to_string()]
        );
    }

    #[test]
    fn multiline_arrays() {
        let cfg = Config::from_toml(
            "[rules.sensitive-egress]\n\
             sensitive_types = [\n\
                 \"RawResponse\", # the pre-obfuscation answer\n\
                 \"Demographics\",\n\
             ]\n",
        )
        .unwrap();
        assert_eq!(
            cfg.list("sensitive-egress", "sensitive_types", &[]),
            vec!["RawResponse".to_string(), "Demographics".to_string()]
        );
    }

    #[test]
    fn defaults_apply_when_missing() {
        let cfg = Config::from_toml("").unwrap();
        assert_eq!(cfg.list("x", "y", &["a"]), vec!["a".to_string()]);
        assert!(cfg.rule_enabled("anything"));
        assert_eq!(cfg.excludes(), vec!["target".to_string()]);
    }

    #[test]
    fn rule_can_be_disabled() {
        let cfg = Config::from_toml("[rules.panic-path]\nenabled = false\n").unwrap();
        assert!(!cfg.rule_enabled("panic-path"));
        assert!(cfg.rule_enabled("float-eq-budget"));
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let cfg = Config::from_toml("[lint]\nexclude = [\"a#b\"]\n").unwrap();
        assert_eq!(cfg.excludes(), vec!["a#b".to_string()]);
    }

    #[test]
    fn bad_syntax_reports_line() {
        let e = Config::from_toml("[lint]\nwhat is this\n").unwrap_err();
        assert_eq!(e.line, 2);
    }
}
