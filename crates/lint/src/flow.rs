//! Intra-procedural dataflow over the token tree.
//!
//! Two walkers live here, both linear single-pass over a function body
//! from [`crate::tree`]:
//!
//! * **Guard liveness** ([`function_flows`]): tracks results of
//!   `.lock()` / `.read()` / `.write()` acquisitions. A guard bound by
//!   `let name = …` lives until its scope ends or an explicit
//!   `drop(name)`; an unbound (temporary) guard lives to the end of the
//!   statement; `let _ = …` drops immediately. Every acquisition and
//!   every call records the set of locks held at that point — the raw
//!   material for the `lock-order`, `double-lock` and
//!   `guard-across-blocking` rules.
//! * **Identity taint** ([`identity_taint`]): locals assigned from
//!   identity-named params/fields are tainted, taint propagates through
//!   assignment and method receivers, and only taint reaching a sink
//!   call (format/log/trace/…) is reported.
//!
//! Known imprecision, chosen deliberately for a lint: guards acquired in
//! an `if`/`while` condition are treated as held through the following
//! block (Rust drops them before the block runs), and a guard returned
//! from a nested block's tail expression is treated as statement-local.
//! Both err in opposite directions and neither has produced a workspace
//! false positive; `// lint:allow` covers intentional exceptions.

use crate::tree::{Delim, FnItem, Group, Node};
use std::collections::HashMap;

/// Receiver-chain method names that forward the underlying object, so
/// `self.journal.clone().lock()` still classifies as lock `journal`.
const PASSTHROUGH: &[&str] = &[
    "clone", "unwrap", "expect", "as_ref", "as_mut", "borrow", "borrow_mut", "to_owned",
];

/// A lock held at some program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Canonical lock name (field or originating method name).
    pub lock: String,
    /// Line where it was acquired.
    pub line: u32,
}

/// One `.lock()`/`.read()`/`.write()` acquisition.
#[derive(Debug, Clone)]
pub struct Acquire {
    /// Canonical lock name.
    pub lock: String,
    /// Acquisition line.
    pub line: u32,
    /// Locks already held at this point (acquisition order).
    pub held: Vec<HeldLock>,
}

/// One call site (method, free function, or macro).
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment, `r#…` spelling preserved).
    pub callee: String,
    /// Whether it was a `.method()` call.
    pub method: bool,
    /// Call line.
    pub line: u32,
    /// Locks held when the call runs (argument effects included).
    pub held: Vec<HeldLock>,
}

/// Everything the concurrency rules need to know about one function.
#[derive(Debug)]
pub struct FnFlow {
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Acquisitions in source order.
    pub acquires: Vec<Acquire>,
    /// Calls in source order.
    pub calls: Vec<CallSite>,
}

/// Runs the guard-liveness walker over every cleanly-parsed function in
/// `nodes`. Functions with unbalanced bodies are skipped entirely.
pub fn function_flows(nodes: &[Node]) -> Vec<FnFlow> {
    crate::tree::functions(nodes)
        .iter()
        .filter(|f| f.analyzable())
        .map(analyze_fn)
        .collect()
}

fn analyze_fn(item: &FnItem) -> FnFlow {
    let mut w = Walker {
        scopes: Vec::new(),
        temps: Vec::new(),
        locals: HashMap::new(),
        pending: None,
        flow: FnFlow {
            name: item.name.clone(),
            line: item.line,
            acquires: Vec::new(),
            calls: Vec::new(),
        },
    };
    w.walk_block(item.body);
    w.flow
}

/// A live guard and the binding that owns it (empty for temporaries and
/// destructured patterns).
#[derive(Debug)]
struct Guard {
    binding: String,
    lock: String,
    line: u32,
}

/// The `let` binding the current statement is initializing.
#[derive(Debug)]
enum Pending {
    /// `let name = …` — first acquisition becomes a scope guard.
    Named(String),
    /// `let _ = …` — acquisitions are dropped immediately.
    Wild,
    /// `let (a, b) = …` etc. — acquisitions become anonymous scope guards.
    Pattern,
}

struct Walker {
    scopes: Vec<Vec<Guard>>,
    temps: Vec<Guard>,
    /// Local name → origin (the method/field it was produced by), used to
    /// canonicalize `user_lock.lock()` to the `user_commit_lock` it came
    /// from.
    locals: HashMap<String, String>,
    pending: Option<Pending>,
    flow: FnFlow,
}

impl Walker {
    fn walk_block(&mut self, group: &Group) {
        self.scopes.push(Vec::new());
        self.walk_nodes(&group.nodes, true);
        self.scopes.pop();
    }

    /// Walks a node sequence. `stmt_level` is true inside brace groups,
    /// where `;`/`,` end statements (commas cover match arms) and `let`
    /// bindings are recognized.
    fn walk_nodes(&mut self, nodes: &[Node], stmt_level: bool) {
        let mut i = 0usize;
        while i < nodes.len() {
            // A nested `fn` item is a separate function with its own
            // flow: skip its body here.
            if stmt_level && nodes[i].is_ident("fn") {
                if let Some(end) = skip_fn_item(nodes, i) {
                    i = end;
                    continue;
                }
            }
            if stmt_level && (nodes[i].is_op(";") || nodes[i].is_op(",")) {
                self.end_statement();
                i += 1;
                continue;
            }
            if stmt_level && nodes[i].is_ident("let") {
                self.pending = Some(read_let_pattern(nodes, i + 1));
                i += 1;
                continue;
            }
            // `drop(name)` ends a guard's life.
            if nodes[i].is_ident("drop")
                && !is_dot(nodes, i)
                && matches!(nodes.get(i + 1), Some(Node::Group(g)) if g.delim == Delim::Paren)
            {
                let g = nodes[i + 1].group().unwrap();
                if let [only] = &g.nodes[..] {
                    if let Some(t) = only.tok() {
                        self.kill_guard(&t.text);
                        i += 2;
                        continue;
                    }
                }
            }
            // Acquisition: `.lock()` / `.read()` / `.write()` with empty
            // parens (`.write(buf)` is I/O, not a lock).
            if let Some((lock, line)) = self.match_acquisition(nodes, i) {
                self.record_acquire(lock, line);
                i += 2; // past the method ident and its `()`
                continue;
            }
            // Calls: `name(…)`, `.name(…)`, `name!(…)`. Walk arguments
            // first so acquisitions inside them are held when the call
            // itself runs.
            if let Some((callee, method, line, args, next)) = match_call(nodes, i) {
                if let Some(args) = args {
                    self.walk_nodes(&args.nodes, false);
                }
                // A call in a `let` initializer is the binding's origin
                // (last one wins, matching evaluation order).
                if !PASSTHROUGH.contains(&callee.as_str()) {
                    if let Some(Pending::Named(binding)) = &self.pending {
                        if callee != *binding {
                            self.locals.insert(binding.clone(), callee.clone());
                        }
                    }
                }
                self.flow.calls.push(CallSite {
                    callee,
                    method,
                    line,
                    held: self.held(),
                });
                i = next;
                continue;
            }
            match &nodes[i] {
                Node::Group(g) if g.delim == Delim::Brace => self.walk_block(g),
                Node::Group(g) => self.walk_nodes(&g.nodes, false),
                Node::Tok(t) => {
                    // Track origin chains at statement level so a later
                    // `.lock()` on the local canonicalizes.
                    if stmt_level {
                        self.note_chain_name(nodes, i, &t.text);
                    }
                }
            }
            i += 1;
        }
        if stmt_level {
            self.end_statement();
        }
    }

    /// `nodes[i]` is `lock`/`read`/`write` preceded by `.` and followed
    /// by `()` → the canonical lock name and line.
    fn match_acquisition(&self, nodes: &[Node], i: usize) -> Option<(String, u32)> {
        let t = nodes[i].tok()?;
        if !matches!(t.text.as_str(), "lock" | "read" | "write") || !is_dot(nodes, i) {
            return None;
        }
        match nodes.get(i + 1) {
            Some(Node::Group(g)) if g.delim == Delim::Paren && g.nodes.is_empty() => {}
            _ => return None,
        }
        let name = self
            .receiver_name(nodes, i)
            .unwrap_or_else(|| "<unknown>".to_string());
        Some((name, t.line))
    }

    /// Walks the receiver chain left of the `.` before `nodes[i]`,
    /// skipping call-argument groups, index brackets and passthrough
    /// methods, and resolving locals to their recorded origin.
    fn receiver_name(&self, nodes: &[Node], i: usize) -> Option<String> {
        let mut j = i.checked_sub(2)?;
        loop {
            match &nodes[j] {
                Node::Group(g) if g.delim != Delim::Brace => j = j.checked_sub(1)?,
                Node::Tok(t) if t.kind == crate::lexer::TokKind::Number => {
                    // Tuple-index field (`self.crash_hooks.0.write()`):
                    // keep walking left.
                    if j >= 2 && is_dot(nodes, j) {
                        j -= 2;
                    } else {
                        return None;
                    }
                }
                Node::Tok(t) if t.kind == crate::lexer::TokKind::Ident => {
                    if PASSTHROUGH.contains(&t.text.as_str()) && j >= 2 && is_dot(nodes, j) {
                        j -= 2;
                        continue;
                    }
                    // A bare `self` receiver (newtype wrappers locking
                    // their own payload) names no particular lock.
                    if t.text == "self" {
                        return None;
                    }
                    let name = self
                        .locals
                        .get(&t.text)
                        .cloned()
                        .unwrap_or_else(|| t.text.clone());
                    return Some(name);
                }
                _ => return None,
            }
        }
    }

    fn record_acquire(&mut self, lock: String, line: u32) {
        self.flow.acquires.push(Acquire {
            lock: lock.clone(),
            line,
            held: self.held(),
        });
        match self.pending.take() {
            Some(Pending::Named(binding)) => {
                // First acquisition claims the binding; later ones in the
                // same statement are temporaries again.
                self.push_scope_guard(Guard { binding, lock, line });
            }
            Some(Pending::Wild) => {} // `let _ = …` drops at once
            Some(Pending::Pattern) => {
                self.push_scope_guard(Guard {
                    binding: String::new(),
                    lock,
                    line,
                });
                self.pending = Some(Pending::Pattern);
            }
            None => self.temps.push(Guard {
                binding: String::new(),
                lock,
                line,
            }),
        }
    }

    fn push_scope_guard(&mut self, guard: Guard) {
        match self.scopes.last_mut() {
            Some(scope) => scope.push(guard),
            None => self.temps.push(guard),
        }
    }

    fn held(&self) -> Vec<HeldLock> {
        self.scopes
            .iter()
            .flatten()
            .chain(self.temps.iter())
            .map(|g| HeldLock {
                lock: g.lock.clone(),
                line: g.line,
            })
            .collect()
    }

    fn end_statement(&mut self) {
        self.temps.clear();
        self.pending = None;
    }

    fn kill_guard(&mut self, binding: &str) {
        for scope in &mut self.scopes {
            scope.retain(|g| g.binding != binding);
        }
        self.temps.retain(|g| g.binding != binding);
    }

    /// Records the origin of a `let x = self.foo(…);` chain: the last
    /// non-passthrough field/method name at statement level, or an
    /// existing local's origin for plain `let y = x;`.
    fn note_chain_name(&mut self, nodes: &[Node], i: usize, text: &str) {
        let Some(Pending::Named(binding)) = &self.pending else {
            return;
        };
        if text == binding || PASSTHROUGH.contains(&text) {
            return;
        }
        let is_chain = is_dot(nodes, i)
            || matches!(nodes.get(i + 1), Some(Node::Group(g)) if g.delim == Delim::Paren);
        let origin = if let Some(known) = self.locals.get(text) {
            known.clone()
        } else if is_chain {
            text.to_string()
        } else {
            return;
        };
        self.locals.insert(binding.clone(), origin);
    }
}

fn is_dot(nodes: &[Node], i: usize) -> bool {
    i >= 1 && nodes[i - 1].is_op(".")
}

/// Reads the pattern after `let`: `mut? name` / `_` / anything else.
fn read_let_pattern(nodes: &[Node], mut i: usize) -> Pending {
    if nodes.get(i).is_some_and(|n| n.is_ident("mut")) {
        i += 1;
    }
    match nodes.get(i).and_then(Node::tok) {
        Some(t) if t.text == "_" => Pending::Wild,
        Some(t) if t.kind == crate::lexer::TokKind::Ident => Pending::Named(t.text.clone()),
        _ => Pending::Pattern,
    }
}

/// Skips a nested `fn` item starting at the `fn` keyword; returns the
/// index just past its body (or `;` for a declaration).
fn skip_fn_item(nodes: &[Node], at: usize) -> Option<usize> {
    let mut j = at + 1;
    while let Some(n) = nodes.get(j) {
        if n.is_op(";") {
            return Some(j + 1);
        }
        if let Some(g) = n.group() {
            if g.delim == Delim::Brace {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Matches a call at `nodes[i]`: `name(…)`, `.name(…)`, or `name!(…)`.
/// Returns (callee, is_method, line, args, next_index). Control-flow
/// keywords are not calls.
fn match_call<'a>(
    nodes: &'a [Node],
    i: usize,
) -> Option<(String, bool, u32, Option<&'a Group>, usize)> {
    let t = nodes[i].tok()?;
    if t.kind != crate::lexer::TokKind::Ident
        || matches!(
            t.text.as_str(),
            "if" | "else" | "while" | "for" | "loop" | "match" | "return" | "fn" | "let"
                | "move" | "in" | "mut" | "ref" | "break" | "continue" | "unsafe" | "async"
                | "await" | "where" | "impl" | "dyn"
        )
    {
        return None;
    }
    let method = is_dot(nodes, i);
    let (args_at, bang) = match nodes.get(i + 1) {
        Some(n) if n.is_op("!") => (i + 2, true),
        _ => (i + 1, false),
    };
    match nodes.get(args_at) {
        Some(Node::Group(g)) if bang || g.delim == Delim::Paren => {
            Some((t.text.clone(), method, t.line, Some(g), args_at + 1))
        }
        _ if bang => Some((t.text.clone(), method, t.line, None, args_at)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Identity taint
// ---------------------------------------------------------------------

/// Taint that reached a sink.
#[derive(Debug, Clone)]
pub struct TaintHit {
    /// Line of the sink call.
    pub line: u32,
    /// Sink callee name.
    pub sink: String,
    /// The tainted identifier passed to it.
    pub ident: String,
    /// The identity source it derives from, when not the ident itself.
    pub origin: Option<String>,
}

/// Runs the identity-taint pass over one function. `sources` are
/// identity-named identifiers (params, fields, locals derived from
/// them); `sinks` are substrings matched against callee names
/// (`format`, `log`, `trace`, …).
pub fn identity_taint(item: &FnItem, sources: &[String], sinks: &[String]) -> Vec<TaintHit> {
    if !item.analyzable() {
        return Vec::new();
    }
    let mut t = Taint {
        tainted: HashMap::new(),
        sources,
        sinks,
        hits: Vec::new(),
    };
    // Identity-named parameters are tainted from the start.
    if let Some(params) = item.params {
        for n in &params.nodes {
            if let Some(tok) = n.tok() {
                if t.is_source(&tok.text) {
                    t.tainted.insert(tok.text.clone(), tok.text.clone());
                }
            }
        }
    }
    t.walk(&item.body.nodes, true);
    t.hits
}

struct Taint<'a> {
    /// Local name → the identity source it derives from.
    tainted: HashMap<String, String>,
    sources: &'a [String],
    sinks: &'a [String],
    hits: Vec<TaintHit>,
}

impl Taint<'_> {
    fn is_source(&self, name: &str) -> bool {
        self.sources.iter().any(|s| s == name)
    }

    fn is_sink(&self, callee: &str) -> bool {
        let lower = callee.to_lowercase();
        self.sinks.iter().any(|s| lower.contains(&s.to_lowercase()))
    }

    /// The identity root of `name`, if tainted.
    fn root(&self, name: &str) -> Option<String> {
        if self.is_source(name) {
            return Some(name.to_string());
        }
        self.tainted.get(name).cloned()
    }

    /// First tainted identifier anywhere under `nodes` (recursing into
    /// groups), with its root.
    fn find_taint(&self, nodes: &[Node]) -> Option<(String, String)> {
        for n in nodes {
            match n {
                Node::Tok(t) if t.kind == crate::lexer::TokKind::Ident => {
                    if let Some(root) = self.root(&t.text) {
                        return Some((t.text.clone(), root));
                    }
                }
                Node::Group(g) => {
                    if let Some(hit) = self.find_taint(&g.nodes) {
                        return Some(hit);
                    }
                }
                _ => {}
            }
        }
        None
    }

    fn walk(&mut self, nodes: &[Node], stmt_level: bool) {
        let mut i = 0usize;
        while i < nodes.len() {
            if stmt_level && nodes[i].is_ident("fn") {
                if let Some(end) = skip_fn_item(nodes, i) {
                    i = end;
                    continue;
                }
            }
            // `let name = INIT;` — propagate taint from the initializer.
            if stmt_level && nodes[i].is_ident("let") {
                if let Pending::Named(binding) = read_let_pattern(nodes, i + 1) {
                    let init_end = stmt_end(nodes, i + 1);
                    // Only the initializer — past the `=` — carries
                    // taint; a rebinding to a clean value clears it.
                    let init_start = (i + 1..init_end)
                        .find(|&j| nodes[j].is_op("="))
                        .map_or(init_end, |j| j + 1);
                    // Sinks inside the initializer still count.
                    self.walk(&nodes[init_start..init_end], false);
                    self.tainted.remove(&binding);
                    if let Some((_, root)) = self.find_taint(&nodes[init_start..init_end]) {
                        self.tainted.insert(binding, root);
                    }
                    i = init_end;
                    continue;
                }
            }
            if let Some((callee, method, line, args, next)) = match_call(nodes, i) {
                let args_nodes: &[Node] = args.map(|g| g.nodes.as_slice()).unwrap_or(&[]);
                if self.is_sink(&callee) {
                    // Tainted argument, or tainted method receiver.
                    let hit = self.find_taint(args_nodes).or_else(|| {
                        if !method {
                            return None;
                        }
                        let recv = nodes[i.checked_sub(2)?].tok()?;
                        self.root(&recv.text).map(|r| (recv.text.clone(), r))
                    });
                    if let Some((ident, root)) = hit {
                        self.hits.push(TaintHit {
                            line,
                            sink: callee.clone(),
                            origin: (root != ident).then_some(root),
                            ident,
                        });
                    }
                } else if method {
                    // Receiver propagation: `buf.push_str(&user_id)`
                    // taints `buf`.
                    if let Some((_, root)) = self.find_taint(args_nodes) {
                        if let Some(recv) =
                            i.checked_sub(2).and_then(|j| nodes[j].tok()).map(|t| &t.text)
                        {
                            self.tainted.insert(recv.clone(), root);
                        }
                    }
                }
                self.walk(args_nodes, false);
                i = next;
                continue;
            }
            if let Some(g) = nodes[i].group() {
                self.walk(&g.nodes, g.delim == Delim::Brace);
            }
            i += 1;
        }
    }
}

/// Index of the `;` (or `,` at statement level) ending the statement
/// starting at `from`, or `nodes.len()`.
fn stmt_end(nodes: &[Node], from: usize) -> usize {
    let mut j = from;
    while j < nodes.len() {
        if nodes[j].is_op(";") || nodes[j].is_op(",") {
            return j;
        }
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree::build;

    fn flows(src: &str) -> Vec<FnFlow> {
        function_flows(&build(&lex(src).toks))
    }

    fn flow(src: &str) -> FnFlow {
        let mut fs = flows(src);
        assert_eq!(fs.len(), 1, "expected one fn in {src}");
        fs.remove(0)
    }

    fn held_at<'a>(f: &'a FnFlow, lock: &str) -> &'a [HeldLock] {
        &f.acquires.iter().find(|a| a.lock == lock).unwrap().held
    }

    #[test]
    fn let_guard_lives_to_scope_end() {
        let f = flow(
            "fn f(&self) {\n\
                 let a = self.surveys.lock().unwrap();\n\
                 let b = self.journal.lock().unwrap();\n\
             }",
        );
        assert_eq!(f.acquires.len(), 2);
        assert!(held_at(&f, "surveys").is_empty());
        assert_eq!(held_at(&f, "journal"), &[HeldLock { lock: "surveys".into(), line: 2 }]);
    }

    #[test]
    fn temp_guard_dies_at_statement_end() {
        let f = flow(
            "fn f(&self) {\n\
                 self.surveys.lock().unwrap().insert(k, v);\n\
                 let b = self.journal.lock().unwrap();\n\
             }",
        );
        assert!(held_at(&f, "journal").is_empty());
        // But the insert call itself ran with the temp held.
        let insert = f.calls.iter().find(|c| c.callee == "insert").unwrap();
        assert_eq!(insert.held.len(), 1);
        assert_eq!(insert.held[0].lock, "surveys");
    }

    #[test]
    fn drop_and_scope_end_kill_guards() {
        let f = flow(
            "fn f(&self) {\n\
                 let a = self.surveys.lock().unwrap();\n\
                 drop(a);\n\
                 { let b = self.journal.lock().unwrap(); }\n\
                 let c = self.submissions.lock().unwrap();\n\
             }",
        );
        assert!(held_at(&f, "journal").is_empty(), "drop(a) must release");
        assert!(held_at(&f, "submissions").is_empty(), "scope end must release");
    }

    #[test]
    fn wildcard_let_drops_immediately() {
        let f = flow(
            "fn f(&self) {\n\
                 let _ = self.surveys.lock().unwrap();\n\
                 let b = self.journal.lock().unwrap();\n\
             }",
        );
        assert!(held_at(&f, "journal").is_empty());
    }

    #[test]
    fn local_origin_canonicalizes_lock_name() {
        let f = flow(
            "fn f(&self) {\n\
                 let user_lock = self.user_commit_lock(user);\n\
                 let g = user_lock.lock().unwrap();\n\
             }",
        );
        assert_eq!(f.acquires.len(), 1);
        assert_eq!(f.acquires[0].lock, "user_commit_lock");
    }

    #[test]
    fn rwlock_read_write_and_io_write_disambiguated() {
        let f = flow(
            "fn f(&self) {\n\
                 let g = self.index.read().unwrap();\n\
                 file.write(buf).unwrap();\n\
             }",
        );
        assert_eq!(f.acquires.len(), 1, "{:?}", f.acquires);
        assert_eq!(f.acquires[0].lock, "index");
    }

    #[test]
    fn call_records_held_set_including_args() {
        let f = flow(
            "fn f(&self) {\n\
                 publish(self.surveys.lock().unwrap());\n\
             }",
        );
        let call = f.calls.iter().find(|c| c.callee == "publish").unwrap();
        assert_eq!(call.held.len(), 1, "arg acquisition held when call runs");
    }

    #[test]
    fn branch_guards_do_not_leak() {
        let f = flow(
            "fn f(&self, c: bool) {\n\
                 if c { let a = self.surveys.lock().unwrap(); }\n\
                 else { let b = self.journal.lock().unwrap(); }\n\
                 let z = self.submissions.lock().unwrap();\n\
             }",
        );
        assert!(held_at(&f, "journal").is_empty());
        assert!(held_at(&f, "submissions").is_empty());
    }

    #[test]
    fn nested_fn_bodies_are_separate_flows() {
        let fs = flows(
            "fn outer(&self) {\n\
                 let a = self.surveys.lock().unwrap();\n\
                 fn inner(s: &S) { let b = s.journal.lock().unwrap(); }\n\
                 let c = self.submissions.lock().unwrap();\n\
             }",
        );
        let inner = fs.iter().find(|f| f.name == "inner").unwrap();
        assert!(held_at(inner, "journal").is_empty(), "outer guard must not leak in");
        let outer = fs.iter().find(|f| f.name == "outer").unwrap();
        assert_eq!(held_at(outer, "submissions").len(), 1);
    }

    #[test]
    fn raw_identifier_receiver_keeps_spelling() {
        let f = flow("fn f(&self) { let g = self.r#type.lock().unwrap(); }");
        assert_eq!(f.acquires[0].lock, "r#type");
    }

    fn taint(src: &str, sources: &[&str], sinks: &[&str]) -> Vec<TaintHit> {
        let nodes = build(&lex(src).toks);
        let fns = crate::tree::functions(&nodes);
        let sources: Vec<String> = sources.iter().map(|s| s.to_string()).collect();
        let sinks: Vec<String> = sinks.iter().map(|s| s.to_string()).collect();
        fns.iter()
            .flat_map(|f| identity_taint(f, &sources, &sinks))
            .collect()
    }

    #[test]
    fn tainted_param_reaching_sink_fires() {
        let hits = taint(
            "fn t(user_id: &str) { trace!(\"submit {}\", user_id); }",
            &["user_id"],
            &["trace"],
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].ident, "user_id");
        assert_eq!(hits[0].sink, "trace");
    }

    #[test]
    fn taint_propagates_through_assignment() {
        let hits = taint(
            "fn t(user_id: &str) { let who = user_id; let msg = format!(\"{}\", who); }",
            &["user_id"],
            &["format"],
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].ident, "who");
        assert_eq!(hits[0].origin.as_deref(), Some("user_id"));
    }

    #[test]
    fn taint_propagates_through_receiver() {
        let hits = taint(
            "fn t(user: &str) { let mut buf = String::new(); buf.push_str(user); log_line(&buf); }",
            &["user"],
            &["log"],
        );
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert_eq!(hits[0].ident, "buf");
    }

    #[test]
    fn no_sink_means_no_finding() {
        let hits = taint(
            "fn t(user_id: &str) { let key = hash(user_id); table.insert(key, 1); }",
            &["user_id"],
            &["format", "log", "trace"],
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn untainted_value_at_sink_is_clean() {
        let hits = taint(
            "fn t(user_id: &str, n: usize) { let count = n + 1; trace!(\"{}\", count); }",
            &["user_id"],
            &["trace"],
        );
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn taint_after_sink_does_not_fire() {
        let hits = taint(
            "fn t(user_id: &str) { let s = one(); trace!(\"{}\", s); let s = user_id; }",
            &["user_id"],
            &["trace"],
        );
        assert!(hits.is_empty(), "{hits:?}");
    }
}
