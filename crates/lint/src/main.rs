//! The `loki-lint` command-line driver.
//!
//! ```text
//! cargo run -p loki-lint                  # diff against the baseline
//! cargo run -p loki-lint -- --deny-new    # CI mode: also fail on stale entries
//! cargo run -p loki-lint -- --format json # machine-readable output
//! cargo run -p loki-lint -- --format github  # ::error annotations for Actions
//! cargo run -p loki-lint -- --write-baseline  # regenerate the baseline
//! ```
//!
//! Exit codes: `0` clean, `1` new violations (or, under `--deny-new`,
//! stale baseline entries), `2` usage/IO error.

use loki_lint::baseline::Baseline;
use loki_lint::config::Config;
use loki_lint::{analyze_workspace, rules, Diagnostic};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    root: PathBuf,
    config: Option<PathBuf>,
    baseline: Option<PathBuf>,
    format: Format,
    write_baseline: bool,
    deny_new: bool,
    list_rules: bool,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Human,
    Json,
    /// GitHub Actions workflow commands: one `::error` per *new*
    /// finding, so annotations land on the PR diff.
    Github,
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("loki-lint: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for rule in rules::registry() {
            out(&format!("{:<24} {}", rule.id(), rule.description()));
        }
        for rule in rules::workspace_registry() {
            out(&format!("{:<24} {}", rule.id(), rule.description()));
        }
        return ExitCode::SUCCESS;
    }

    let config_path = opts
        .config
        .clone()
        .unwrap_or_else(|| opts.root.join("loki-lint.toml"));
    let cfg = match load_config(&config_path) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("loki-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let findings = match analyze_workspace(&opts.root, &cfg) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("loki-lint: failed to scan {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join("loki-lint.baseline"));

    if opts.write_baseline {
        let text = Baseline::render(&findings);
        if let Err(e) = fs::write(&baseline_path, text) {
            eprintln!(
                "loki-lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        out(&format!(
            "wrote {} entries to {}",
            findings.len(),
            baseline_path.display()
        ));
        return ExitCode::SUCCESS;
    }

    let baseline = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("loki-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let diff = baseline.diff(&findings);

    match opts.format {
        Format::Human => {
            for d in &diff.new {
                out(&d.render_human());
            }
            for e in &diff.stale {
                out(&format!(
                    "{}: stale baseline entry ({}): no longer found: {}",
                    e.file, e.rule, e.snippet
                ));
            }
            out(&format!(
                "loki-lint: {} file findings, {} baselined, {} new, {} stale",
                findings.len(),
                baseline.len(),
                diff.new.len(),
                diff.stale.len()
            ));
        }
        Format::Json => out(&render_json(&findings, &diff.new, &diff.stale)),
        Format::Github => {
            for d in &diff.new {
                out(&render_github(d));
            }
            for e in &diff.stale {
                out(&format!(
                    "::warning file={}::stale loki-lint baseline entry ({}): \
                     no longer found: {}",
                    github_escape_property(&e.file),
                    github_escape(&e.rule),
                    github_escape(&e.snippet)
                ));
            }
            out(&format!(
                "loki-lint: {} file findings, {} baselined, {} new, {} stale",
                findings.len(),
                baseline.len(),
                diff.new.len(),
                diff.stale.len()
            ));
        }
    }

    if !diff.new.is_empty() || (opts.deny_new && !diff.stale.is_empty()) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "usage: loki-lint [--root DIR] [--config FILE] [--baseline FILE]
                 [--format human|json|github] [--write-baseline] [--deny-new] [--list-rules]";

/// Writes one line to stdout, ignoring write failures such as a closed
/// pipe (`loki-lint | head`) — the exit code, not the stream, carries
/// the verdict.
fn out(text: &str) {
    use std::io::Write;
    let mut stdout = std::io::stdout().lock();
    let _ = stdout
        .write_all(text.as_bytes())
        .and_then(|()| stdout.write_all(b"\n"));
}

fn parse_args() -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        config: None,
        baseline: None,
        format: Format::Human,
        write_baseline: false,
        deny_new: false,
        list_rules: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(value("--root")?),
            "--config" => opts.config = Some(PathBuf::from(value("--config")?)),
            "--baseline" => opts.baseline = Some(PathBuf::from(value("--baseline")?)),
            "--format" => {
                opts.format = match value("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    "github" => Format::Github,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--write-baseline" => opts.write_baseline = true,
            "--deny-new" => opts.deny_new = true,
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err("help requested".to_string()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// Reads the config; a missing file means built-in defaults.
fn load_config(path: &std::path::Path) -> Result<Config, String> {
    match fs::read_to_string(path) {
        Ok(text) => Config::from_toml(&text)
            .map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Config::from_toml("").map_err(|e| e.to_string())
        }
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Reads the baseline; a missing file means an empty baseline.
fn load_baseline(path: &std::path::Path) -> Result<Baseline, String> {
    match fs::read_to_string(path) {
        Ok(text) => {
            Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Machine-readable report. Hand-rendered (the linter is dependency-free);
/// strings pass through [`json_escape`].
fn render_json(
    findings: &[Diagnostic],
    new: &[Diagnostic],
    stale: &[loki_lint::baseline::BaselineEntry],
) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, d) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"message\": \"{}\", \"snippet\": \"{}\", \"new\": {}}}",
            json_escape(d.rule),
            json_escape(&d.file),
            d.line,
            json_escape(&d.message),
            json_escape(&d.snippet),
            new.contains(d)
        ));
    }
    out.push_str("\n  ],\n  \"stale_baseline\": [");
    for (i, e) in stale.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"file\": \"{}\", \"snippet\": \"{}\"}}",
            json_escape(&e.rule),
            json_escape(&e.file),
            json_escape(&e.snippet)
        ));
    }
    out.push_str(&format!(
        "\n  ],\n  \"summary\": {{\"total\": {}, \"new\": {}, \"stale\": {}}}\n}}",
        findings.len(),
        new.len(),
        stale.len()
    ));
    out
}

/// One GitHub Actions `::error` workflow command, anchored to the
/// finding's file and line so it renders on the PR diff.
fn render_github(d: &Diagnostic) -> String {
    format!(
        "::error file={},line={},title=loki-lint {}::{}",
        github_escape_property(&d.file),
        d.line,
        github_escape_property(d.rule),
        github_escape(&d.message)
    )
}

/// Escapes workflow-command message data (`%`, CR, LF).
fn github_escape(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// Escapes workflow-command property values, which additionally reserve
/// `:` and `,`.
fn github_escape_property(s: &str) -> String {
    github_escape(s).replace(':', "%3A").replace(',', "%2C")
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
