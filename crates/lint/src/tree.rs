//! Token-tree parser: delimiter nesting and item boundaries.
//!
//! The lexical rules match flat token patterns; the structural rules
//! (lock discipline, identity taint) need to know *where scopes begin and
//! end*. This module builds the minimal structure for that on top of
//! [`crate::lexer`]: a tree of brace/paren/bracket groups, plus an item
//! scanner that finds `fn` bodies (descending through `mod`/`impl`
//! blocks).
//!
//! Robustness contract: the parser never fails. Unbalanced input degrades
//! — a close delimiter with no matching open becomes a leaf token, an open
//! with no close produces a group marked `balanced: false` that runs to
//! end of input — and the structural passes skip analysis inside
//! unbalanced groups ("no findings in that item", never a panic and never
//! a finding hallucinated from a half-parsed scope).

use crate::lexer::{Tok, TokKind};

/// A delimiter class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    /// `{ … }`
    Brace,
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
}

impl Delim {
    fn open(op: &str) -> Option<Delim> {
        match op {
            "{" => Some(Delim::Brace),
            "(" => Some(Delim::Paren),
            "[" => Some(Delim::Bracket),
            _ => None,
        }
    }

    fn closes(self, op: &str) -> bool {
        matches!(
            (self, op),
            (Delim::Brace, "}") | (Delim::Paren, ")") | (Delim::Bracket, "]")
        )
    }

    fn is_close(op: &str) -> bool {
        matches!(op, "}" | ")" | "]")
    }
}

/// One node of the token tree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A non-delimiter token.
    Tok(Tok),
    /// A delimited group.
    Group(Group),
}

impl Node {
    /// The leaf token, if this node is one.
    pub fn tok(&self) -> Option<&Tok> {
        match self {
            Node::Tok(t) => Some(t),
            Node::Group(_) => None,
        }
    }

    /// The group, if this node is one.
    pub fn group(&self) -> Option<&Group> {
        match self {
            Node::Tok(_) => None,
            Node::Group(g) => Some(g),
        }
    }

    /// Whether this node is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.tok().is_some_and(|t| t.is_ident(s))
    }

    /// Whether this node is the operator `s`.
    pub fn is_op(&self, s: &str) -> bool {
        self.tok().is_some_and(|t| t.is_op(s))
    }

    /// The source line this node starts on.
    pub fn line(&self) -> u32 {
        match self {
            Node::Tok(t) => t.line,
            Node::Group(g) => g.open_line,
        }
    }
}

/// A delimited group of nodes.
#[derive(Debug, Clone)]
pub struct Group {
    /// Delimiter class.
    pub delim: Delim,
    /// Line of the opening delimiter.
    pub open_line: u32,
    /// Line of the closing delimiter (last token's line when unclosed).
    pub close_line: u32,
    /// Child nodes in source order.
    pub nodes: Vec<Node>,
    /// `false` when the close delimiter was missing (ran to end of input
    /// or was cut short by an outer close). Analysis must not trust the
    /// scope structure inside an unbalanced group.
    pub balanced: bool,
}

impl Group {
    /// Whether this group or any nested group is unbalanced.
    pub fn deeply_balanced(&self) -> bool {
        self.balanced
            && self
                .nodes
                .iter()
                .all(|n| n.group().is_none_or(Group::deeply_balanced))
    }
}

/// Parses a token stream into top-level nodes. Never fails; see the
/// module docs for the degradation rules.
pub fn build(toks: &[Tok]) -> Vec<Node> {
    let mut pos = 0usize;
    let mut top = Vec::new();
    while pos < toks.len() {
        let (node, next) = parse_node(toks, pos);
        // A stray close delimiter at top level becomes a leaf.
        top.push(node);
        pos = next;
    }
    top
}

/// Parses one node starting at `pos`; returns it and the next position.
fn parse_node(toks: &[Tok], pos: usize) -> (Node, usize) {
    let t = &toks[pos];
    let Some(delim) = (t.kind == TokKind::Op)
        .then(|| Delim::open(&t.text))
        .flatten()
    else {
        return (Node::Tok(t.clone()), pos + 1);
    };
    let mut nodes = Vec::new();
    let mut i = pos + 1;
    while i < toks.len() {
        let c = &toks[i];
        if c.kind == TokKind::Op && Delim::is_close(&c.text) {
            if delim.closes(&c.text) {
                return (
                    Node::Group(Group {
                        delim,
                        open_line: t.line,
                        close_line: c.line,
                        nodes,
                        balanced: true,
                    }),
                    i + 1,
                );
            }
            // A close that belongs to an outer group: stop here without
            // consuming it, marking this group unbalanced.
            break;
        }
        let (node, next) = parse_node(toks, i);
        nodes.push(node);
        i = next;
    }
    let close_line = toks.get(i.min(toks.len().saturating_sub(1))).map_or(t.line, |c| c.line);
    (
        Node::Group(Group {
            delim,
            open_line: t.line,
            close_line,
            nodes,
            balanced: false,
        }),
        i,
    )
}

/// One `fn` item found in the tree.
#[derive(Debug)]
pub struct FnItem<'a> {
    /// Function name (raw identifiers keep their `r#` spelling).
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// The parameter list `( … )`, when present and well-formed.
    pub params: Option<&'a Group>,
    /// The body `{ … }`.
    pub body: &'a Group,
}

impl FnItem<'_> {
    /// Whether the body (including every nested group) parsed cleanly —
    /// the precondition for running structural analysis on it.
    pub fn analyzable(&self) -> bool {
        self.body.deeply_balanced()
    }
}

/// Collects every `fn` item with a body, descending through nested brace
/// groups (`mod`/`impl` bodies, and function bodies for nested fns).
pub fn functions<'a>(nodes: &'a [Node]) -> Vec<FnItem<'a>> {
    let mut out = Vec::new();
    collect_fns(nodes, &mut out);
    out
}

fn collect_fns<'a>(nodes: &'a [Node], out: &mut Vec<FnItem<'a>>) {
    let mut i = 0usize;
    while i < nodes.len() {
        if nodes[i].is_ident("fn") {
            if let Some((item, next)) = match_fn(nodes, i) {
                collect_fns(&item.body.nodes, out);
                out.push(item);
                i = next;
                continue;
            }
        }
        if let Some(g) = nodes[i].group() {
            collect_fns(&g.nodes, out);
        }
        i += 1;
    }
}

/// Matches `fn NAME … ( … ) … { … }` starting at the `fn` keyword.
/// Returns the item and the index just past its body. `fn` pointer types
/// (`fn(u8) -> u8`, no name) and bodiless trait methods (`fn f();`) do
/// not match.
fn match_fn<'a>(nodes: &'a [Node], at: usize) -> Option<(FnItem<'a>, usize)> {
    let name_node = nodes.get(at + 1)?;
    let name = name_node.tok().filter(|t| t.kind == TokKind::Ident)?;
    let line = nodes[at].line();
    // Scan forward for the parameter parens and then the body brace at
    // this nesting level, giving up at a `;` (trait method declaration)
    // or at another `fn` (we mis-guessed; resync there).
    let mut params = None;
    let mut j = at + 2;
    while let Some(n) = nodes.get(j) {
        if n.is_op(";") || n.is_ident("fn") {
            return None;
        }
        match n.group() {
            Some(g) if g.delim == Delim::Paren && params.is_none() => params = Some(g),
            Some(g) if g.delim == Delim::Brace => {
                // A brace before the params is not a fn body (e.g. a
                // const generic default — give up rather than misparse).
                params.as_ref()?;
                return Some((
                    FnItem {
                        name: name.text.clone(),
                        line,
                        params,
                        body: g,
                    },
                    j + 1,
                ));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Node> {
        build(&lex(src).toks)
    }

    #[test]
    fn nests_groups() {
        let nodes = parse("fn f(a: u8) { if a > 0 { g(a); } }");
        let fns = functions(&nodes);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "f");
        assert!(fns[0].analyzable());
        assert_eq!(fns[0].params.unwrap().delim, Delim::Paren);
        // The body contains a nested brace group for the if.
        assert!(fns[0]
            .body
            .nodes
            .iter()
            .any(|n| n.group().is_some_and(|g| g.delim == Delim::Brace)));
    }

    #[test]
    fn finds_fns_in_impl_and_mod() {
        let nodes = parse(
            "mod m { impl Foo { fn a(&self) {} pub fn b() {} } fn c() {} }\nfn d() {}",
        );
        let mut names: Vec<String> = functions(&nodes).into_iter().map(|f| f.name).collect();
        names.sort();
        assert_eq!(names, ["a", "b", "c", "d"]);
    }

    #[test]
    fn nested_fn_and_closures() {
        let nodes = parse("fn outer() { let c = |x: u8| { x + 1 }; fn inner() {} }");
        let mut names: Vec<String> = functions(&nodes).into_iter().map(|f| f.name).collect();
        names.sort();
        assert_eq!(names, ["inner", "outer"]);
    }

    #[test]
    fn fn_pointer_types_and_trait_decls_are_not_items() {
        let nodes = parse("trait T { fn m(&self); } type F = fn(u8) -> u8;");
        assert!(functions(&nodes).is_empty());
        // With a provided method the item is found.
        let nodes = parse("trait T { fn m(&self) { self.n() } }");
        assert_eq!(functions(&nodes).len(), 1);
    }

    #[test]
    fn where_clause_and_generics() {
        let nodes = parse("fn f<T: Clone>(x: T) -> Vec<T> where T: Send { vec![x] }");
        let fns = functions(&nodes);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].params.is_some());
    }

    #[test]
    fn unbalanced_open_degrades() {
        let nodes = parse("fn f() { let a = 1; ");
        let fns = functions(&nodes);
        assert_eq!(fns.len(), 1);
        assert!(!fns[0].analyzable(), "unclosed body must not be analyzable");
    }

    #[test]
    fn stray_close_is_a_leaf() {
        let nodes = parse("} fn f() {}");
        assert!(nodes[0].is_op("}"));
        assert_eq!(functions(&nodes).len(), 1);
    }

    #[test]
    fn mismatched_close_stops_inner_group() {
        // The `)` closes nothing; the brace group containing it becomes
        // unbalanced but the outer structure survives.
        let nodes = parse("fn f() { ( } fn g() {}");
        let fns = functions(&nodes);
        assert!(fns.iter().any(|f| f.name == "g" && f.analyzable()));
        let f = fns.iter().find(|f| f.name == "f");
        assert!(f.is_none_or(|f| !f.analyzable()));
    }

    #[test]
    fn braces_inside_strings_and_macros_do_not_nest() {
        let nodes = parse(r#"fn f() { let s = "{ not a scope }"; m!({ inner }); }"#);
        let fns = functions(&nodes);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].analyzable());
    }

    #[test]
    fn byte_char_brace_stays_opaque() {
        let nodes = parse("fn f() { let b = b'{'; }");
        let fns = functions(&nodes);
        assert_eq!(fns.len(), 1);
        assert!(fns[0].analyzable());
    }
}
