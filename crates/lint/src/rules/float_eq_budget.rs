//! `float-eq-budget`: no `==`/`!=` on privacy-budget floats.
//!
//! ε/δ values are `f64`s produced by composition arithmetic; exact
//! equality on them is almost always a latent bug (a budget check that
//! passes or fails on the last ulp). Ordering comparisons (`<=`, `<`) are
//! fine — that is how budgets are *supposed* to be checked.
//!
//! Scope: `crates/dp` and the balancing ledger in `crates/core`.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::rules::{emit, in_scope, mentions_keyword, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// See module docs.
pub struct FloatEqBudget;

const ID: &str = "float-eq-budget";

const DEFAULT_CRATES: &[&str] = &["loki-dp"];
const DEFAULT_FILES: &[&str] = &["crates/core/src/ledger.rs"];
const DEFAULT_KEYWORDS: &[&str] = &["epsilon", "eps", "delta", "budget", "loss", "sigma"];

/// How many tokens around the operator are searched for budget operands.
const WINDOW: usize = 8;

/// Operators that terminate the operand expression on either side.
const STOPPERS: &[&str] = &[";", "{", "}", "&&", "||"];

impl Rule for FloatEqBudget {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "no ==/!= on epsilon/delta/budget floats; compare with ordering or tolerance"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, cfg, ID, DEFAULT_CRATES, DEFAULT_FILES) {
            return;
        }
        let keywords = cfg.list(ID, "keywords", DEFAULT_KEYWORDS);
        for (i, t) in file.toks.iter().enumerate() {
            if !(t.is_op("==") || t.is_op("!=")) {
                continue;
            }
            let mut operand_ident = None;
            // Scan outward from the operator, stopping at expression
            // boundaries, looking for a budget-named identifier.
            'sides: for side in [-1i64, 1i64] {
                for step in 1..=WINDOW as i64 {
                    let j = i as i64 + side * step;
                    if j < 0 {
                        continue 'sides;
                    }
                    let Some(n) = file.toks.get(j as usize) else {
                        continue 'sides;
                    };
                    if STOPPERS.iter().any(|s| n.is_op(s)) {
                        continue 'sides;
                    }
                    if n.kind == TokKind::Ident && mentions_keyword(&n.text, &keywords) {
                        operand_ident = Some(n.text.clone());
                        break 'sides;
                    }
                }
            }
            if let Some(name) = operand_ident {
                emit(
                    file,
                    ID,
                    t.line,
                    format!(
                        "float equality `{}` on budget expression involving `{name}` — \
                         use ordering/tolerance; exact f64 equality on composed \
                         epsilon/delta is ulp-fragile",
                        t.text
                    ),
                    out,
                );
            }
        }
    }
}
