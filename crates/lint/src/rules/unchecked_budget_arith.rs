//! `unchecked-budget-arith`: budget accounting must use saturating ops.
//!
//! The accountant's correctness depends on composition arithmetic that
//! *cannot* wrap, underflow, or produce NaN: ε must saturate at `∞`, δ at
//! `1.0`, and index/count arithmetic over loss vectors must not underflow
//! `usize`. The `loki-dp` params layer provides `saturating_add`/`scale`/
//! `compose` for exactly this reason.
//!
//! In the accounting files, raw `+`/`-`/`+=`/`-=` on a line that
//! manipulates budget state (named epsilon/delta/budget/loss/spent) is
//! flagged; route the arithmetic through the saturating helpers instead.

use crate::config::Config;
use crate::rules::{emit, in_scope, mentions_keyword, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// See module docs.
pub struct UncheckedBudgetArith;

const ID: &str = "unchecked-budget-arith";

const DEFAULT_FILES: &[&str] = &[
    "crates/core/src/ledger.rs",
    "crates/dp/src/accountant.rs",
];
const DEFAULT_KEYWORDS: &[&str] = &["epsilon", "delta", "budget", "loss", "spent"];
const RAW_OPS: &[&str] = &["+", "-", "+=", "-="];

impl Rule for UncheckedBudgetArith {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "budget accounting must use saturating/checked arithmetic \
         (saturating_add/compose), not raw +/-"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, cfg, ID, &[], DEFAULT_FILES) {
            return;
        }
        let keywords = cfg.list(ID, "keywords", DEFAULT_KEYWORDS);
        let mut last_line = 0u32;
        for t in &file.toks {
            if !RAW_OPS.iter().any(|o| t.is_op(o)) {
                continue;
            }
            // One diagnostic per line is enough — the fix is per-expression.
            if t.line == last_line {
                continue;
            }
            if mentions_keyword(&file.snippet(t.line), &keywords) {
                last_line = t.line;
                emit(
                    file,
                    ID,
                    t.line,
                    format!(
                        "raw `{}` in budget accounting — use saturating/checked \
                         arithmetic (Epsilon::saturating_add, PrivacyLoss::compose, \
                         usize::saturating_sub) so composition cannot wrap",
                        t.text
                    ),
                    out,
                );
            }
        }
    }
}
