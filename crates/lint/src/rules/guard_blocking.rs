//! `guard-across-blocking`: no lock guard may be live across a blocking
//! call.
//!
//! The submit path's tail latency is bounded by its critical sections
//! (§ DESIGN 4): PR 5 moved fsync out of every lock by design, and this
//! rule keeps it that way mechanically. A guard live across `sync_all`,
//! a channel `send`/`recv`, or a thread `join` stretches the critical
//! section by an unbounded I/O or scheduling delay — and a `recv`/`join`
//! while holding a lock the other side needs is a deadlock, not just a
//! stall. Intentional exceptions (e.g. a dedicated writer thread that
//! owns its file behind the same mutex) carry a `// lint:allow` with the
//! justification inline.

use crate::config::Config;
use crate::flow;
use crate::rules::{emit, in_scope, Rule};
use crate::source::SourceFile;
use crate::tree;
use crate::Diagnostic;

/// See module docs.
pub struct GuardAcrossBlocking;

const ID: &str = "guard-across-blocking";

/// Crates with locks on latency-critical paths.
const DEFAULT_CRATES: &[&str] = &["loki-server"];

/// Method names that block on I/O, a channel peer, or another thread.
/// `wait`/`wait_timeout` are deliberately absent: a condvar *requires*
/// its guard, and flagging the idiom would teach people to allow-list
/// this rule reflexively.
pub const DEFAULT_BLOCKING: &[&str] = &[
    "sync_all",
    "sync_data",
    "fsync",
    "write_all",
    "flush",
    "send",
    "recv",
    "recv_timeout",
    "join",
];

impl Rule for GuardAcrossBlocking {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "a lock guard must not be live across fsync/channel send/recv/join — \
         blocking inside a critical section stretches or deadlocks it"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, cfg, ID, DEFAULT_CRATES, &[]) {
            return;
        }
        let blocking = cfg.list(ID, "blocking", DEFAULT_BLOCKING);
        let nodes = tree::build(&file.toks);
        for fun in flow::function_flows(&nodes) {
            for call in &fun.calls {
                if !call.method
                    || call.held.is_empty()
                    || !blocking.iter().any(|b| b == &call.callee)
                {
                    continue;
                }
                let held: Vec<String> = call
                    .held
                    .iter()
                    .map(|h| format!("`{}` (acquired line {})", h.lock, h.line))
                    .collect();
                emit(
                    file,
                    ID,
                    call.line,
                    format!(
                        "blocking call `.{}()` in `{}` while holding {} — move the \
                         blocking operation outside the critical section",
                        call.callee,
                        fun.name,
                        held.join(", "),
                    ),
                    out,
                );
            }
        }
    }
}
