//! The rule registry and helpers shared by rules.
//!
//! Each rule is a token-level check over one [`SourceFile`]. All rules
//! funnel their findings through [`emit`], which applies the two global
//! filters: test-only code is skipped, and `// lint:allow <rule-id>`
//! directives (same line or the line above) suppress the finding.

pub mod double_lock;
pub mod float_eq_budget;
pub mod guard_blocking;
pub mod lock_order;
pub mod panic_path;
pub mod sensitive_egress;
pub mod unchecked_budget_arith;
pub mod unseeded_rng;

use crate::config::Config;
use crate::source::SourceFile;
use crate::Diagnostic;

/// One lint rule.
pub trait Rule {
    /// Stable rule id used in diagnostics, baseline entries and
    /// `lint:allow` directives.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Checks one file, appending findings to `out`.
    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>);
}

/// A rule that needs the whole workspace at once (cross-function,
/// cross-file graphs). Findings still anchor to one file/line and flow
/// through the same [`emit`] filters and baseline as per-file rules.
pub trait WorkspaceRule {
    /// Stable rule id.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Checks the full file set, appending findings to `out`.
    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>);
}

/// All registered per-file rules, in diagnostic-output order.
pub fn registry() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(sensitive_egress::SensitiveEgress),
        Box::new(unseeded_rng::UnseededRng),
        Box::new(float_eq_budget::FloatEqBudget),
        Box::new(panic_path::PanicPath),
        Box::new(unchecked_budget_arith::UncheckedBudgetArith),
        Box::new(guard_blocking::GuardAcrossBlocking),
        Box::new(double_lock::DoubleLock),
    ]
}

/// All registered workspace-level rules.
pub fn workspace_registry() -> Vec<Box<dyn WorkspaceRule>> {
    vec![Box::new(lock_order::LockOrder)]
}

/// Appends a finding unless the line is test-only or explicitly allowed.
pub(crate) fn emit(
    file: &SourceFile,
    rule: &'static str,
    line: u32,
    message: String,
    out: &mut Vec<Diagnostic>,
) {
    if file.is_test_line(line) || file.is_allowed(rule, line) {
        return;
    }
    out.push(Diagnostic {
        rule,
        file: file.rel_path.clone(),
        line,
        message,
        snippet: file.snippet(line),
    });
}

/// Whether `file` falls in a rule's scope: its crate is in the rule's
/// `crates` list, or its path starts with one of the rule's `files`
/// prefixes. Defaults apply when the config omits the keys.
pub(crate) fn in_scope(
    file: &SourceFile,
    cfg: &Config,
    rule: &str,
    default_crates: &[&str],
    default_files: &[&str],
) -> bool {
    let crates = cfg.list(rule, "crates", default_crates);
    if crates.iter().any(|c| c == &file.crate_name) {
        return true;
    }
    let files = cfg.list(rule, "files", default_files);
    files.iter().any(|f| file.rel_path.starts_with(f.as_str()))
}

/// Whether any name in `keywords` occurs (case-insensitively) in `text`.
pub(crate) fn mentions_keyword(text: &str, keywords: &[String]) -> bool {
    let lower = text.to_lowercase();
    keywords.iter().any(|k| lower.contains(&k.to_lowercase()))
}
