//! `lock-order`: the acquired-while-held graph must match the declared
//! order and stay acyclic.
//!
//! Every acquisition with a non-empty held set contributes an edge
//! `held → acquired` to a per-crate graph, keyed by canonical lock name
//! (field or originating method). Calls to same-file functions propagate
//! transitively: if `f` calls `g` while holding `a`, every lock `g`
//! (transitively) acquires is treated as acquired under `a`. Two checks
//! run over the edges:
//!
//! 1. **Declared order** — `loki-lint.toml` pins the workspace order
//!    (`[rules.lock-order] order = [...]`). An edge from a later name to
//!    an earlier one is an inversion: two threads taking the pair in
//!    opposite orders deadlock.
//! 2. **Cycles** — for lock pairs outside the declared list, any edge
//!    whose reverse is also reachable is reported; a self-edge through a
//!    call chain means a non-reentrant re-acquire.
//!
//! This is the PR-gate for the sharding arc: the shard refactor will
//! multiply `store.rs` locks, and each new edge either respects the
//! declared order or fails `--deny-new` at the exact acquisition site.

use crate::config::Config;
use crate::flow::{self, FnFlow};
use crate::rules::{emit, in_scope, WorkspaceRule};
use crate::source::SourceFile;
use crate::tree;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// See module docs.
pub struct LockOrder;

const ID: &str = "lock-order";

/// Crates whose lock graph is checked.
const DEFAULT_CRATES: &[&str] = &["loki-server"];

/// The canonical workspace lock order (outermost first). Mirrors the
/// `[rules.lock-order] order` declaration in `loki-lint.toml` and the
/// doc comment on `AppState` in `crates/server/src/store.rs`. The first
/// seven names are per-shard locks (one instance per store shard; no
/// path crosses shards while holding a same-ranked lock, so one order
/// covers all shards), the trailing two are the global set.
pub const DEFAULT_ORDER: &[&str] = &[
    "publish_lock",
    "user_locks",
    "user_commit_lock",
    "surveys",
    "submissions",
    "user_indices",
    "journal",
    "agg",
    "sketches",
    "qi_surveys",
    "epsilon_budget",
    "crash_hooks",
];

/// One acquired-while-held edge.
struct Edge {
    krate: String,
    /// Lock held.
    from: String,
    /// Lock acquired under it.
    to: String,
    /// Index into the analyzed file list.
    file: usize,
    line: u32,
    /// Same-file callee the acquisition happened through, if indirect.
    via: Option<String>,
}

impl WorkspaceRule for LockOrder {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "lock acquisitions must respect the declared workspace order and \
         the acquired-while-held graph must stay acyclic"
    }

    fn check(&self, files: &[SourceFile], cfg: &Config, out: &mut Vec<Diagnostic>) {
        let order = cfg.list(ID, "order", DEFAULT_ORDER);
        let mut edges: Vec<Edge> = Vec::new();
        let mut seen: HashSet<(String, String, String, usize, u32)> = HashSet::new();
        for (fi, file) in files.iter().enumerate() {
            if !in_scope(file, cfg, ID, DEFAULT_CRATES, &[]) {
                continue;
            }
            let nodes = tree::build(&file.toks);
            let flows = flow::function_flows(&nodes);
            let locksets = transitive_locksets(&flows);
            for fun in &flows {
                for acq in &fun.acquires {
                    for h in &acq.held {
                        push_edge(
                            &mut edges,
                            &mut seen,
                            file,
                            fi,
                            &h.lock,
                            &acq.lock,
                            acq.line,
                            None,
                        );
                    }
                }
                for call in &fun.calls {
                    if call.held.is_empty() {
                        continue;
                    }
                    let Some(callee_locks) = locksets.get(&call.callee) else {
                        continue;
                    };
                    for h in &call.held {
                        for l in callee_locks {
                            push_edge(
                                &mut edges,
                                &mut seen,
                                file,
                                fi,
                                &h.lock,
                                l,
                                call.line,
                                Some(&call.callee),
                            );
                        }
                    }
                }
            }
        }

        // Adjacency per crate over distinct (from → to) pairs.
        let mut adj: HashMap<&str, BTreeMap<&str, BTreeSet<&str>>> = HashMap::new();
        for e in &edges {
            adj.entry(&e.krate)
                .or_default()
                .entry(&e.from)
                .or_default()
                .insert(&e.to);
        }

        let rank = |name: &str| order.iter().position(|o| o == name);
        for e in &edges {
            let file = &files[e.file];
            if e.from == e.to {
                // Direct re-acquires are double-lock's finding; only the
                // call-mediated ones surface here.
                if let Some(via) = &e.via {
                    emit(
                        file,
                        ID,
                        e.line,
                        format!(
                            "call to `{via}` re-acquires `{}` already held here — \
                             std locks are not reentrant; this deadlocks",
                            e.from,
                        ),
                        out,
                    );
                }
                continue;
            }
            let via = e
                .via
                .as_ref()
                .map(|v| format!(" (via call to `{v}`)"))
                .unwrap_or_default();
            if let (Some(rf), Some(rt)) = (rank(&e.from), rank(&e.to)) {
                if rf > rt {
                    emit(
                        file,
                        ID,
                        e.line,
                        format!(
                            "`{}` acquired while `{}` is held{via} — declared order \
                             in loki-lint.toml requires `{}` before `{}`",
                            e.to, e.from, e.to, e.from,
                        ),
                        out,
                    );
                }
                // Pairs the declared order covers are fully adjudicated
                // by it; the cycle check is for undeclared locks.
                continue;
            }
            if reaches(adj.get(e.krate.as_str()), &e.to, &e.from) {
                emit(
                    file,
                    ID,
                    e.line,
                    format!(
                        "`{}` acquired while `{}` is held{via}, but `{}` is also \
                         acquired while `{}` is held elsewhere — acquisition cycle, \
                         pick one order and declare it in loki-lint.toml",
                        e.to, e.from, e.from, e.to,
                    ),
                    out,
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_edge(
    edges: &mut Vec<Edge>,
    seen: &mut HashSet<(String, String, String, usize, u32)>,
    file: &SourceFile,
    fi: usize,
    from: &str,
    to: &str,
    line: u32,
    via: Option<&str>,
) {
    if from == "<unknown>" || to == "<unknown>" {
        return;
    }
    let key = (
        file.crate_name.clone(),
        from.to_string(),
        to.to_string(),
        fi,
        line,
    );
    if !seen.insert(key) {
        return;
    }
    edges.push(Edge {
        krate: file.crate_name.clone(),
        from: from.to_string(),
        to: to.to_string(),
        file: fi,
        line,
        via: via.map(str::to_string),
    });
}

/// Per function name, every lock it acquires directly or through
/// same-file calls (fixpoint). Duplicate names across impls merge
/// conservatively.
fn transitive_locksets(flows: &[FnFlow]) -> HashMap<String, BTreeSet<String>> {
    let mut sets: HashMap<String, BTreeSet<String>> = HashMap::new();
    for f in flows {
        let entry = sets.entry(f.name.clone()).or_default();
        entry.extend(
            f.acquires
                .iter()
                .map(|a| a.lock.clone())
                .filter(|l| l != "<unknown>"),
        );
    }
    loop {
        let mut changed = false;
        for f in flows {
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in &f.calls {
                if c.callee == f.name {
                    continue;
                }
                if let Some(callee_set) = sets.get(&c.callee) {
                    add.extend(callee_set.iter().cloned());
                }
            }
            if let Some(own) = sets.get_mut(&f.name) {
                let before = own.len();
                own.extend(add);
                changed |= own.len() != before;
            }
        }
        if !changed {
            return sets;
        }
    }
}

/// Whether `to` is reachable from `from` in the crate's edge graph.
fn reaches(
    adj: Option<&BTreeMap<&str, BTreeSet<&str>>>,
    from: &str,
    to: &str,
) -> bool {
    let Some(adj) = adj else {
        return false;
    };
    let mut stack = vec![from];
    let mut visited: HashSet<&str> = HashSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !visited.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}
