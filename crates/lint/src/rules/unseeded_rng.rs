//! `unseeded-rng`: mechanism code must take an injected `Rng`.
//!
//! Every DP mechanism in `crates/dp` samples noise through a caller-
//! provided `&mut R: Rng` so experiments are reproducible and tests can
//! assert exact outputs. Ambient entropy (`thread_rng()`,
//! `from_entropy()`) silently breaks both and makes noise audits
//! impossible — ban it in mechanism code.

use crate::config::Config;
use crate::rules::{emit, in_scope, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// See module docs.
pub struct UnseededRng;

const ID: &str = "unseeded-rng";

const DEFAULT_CRATES: &[&str] = &["loki-dp"];
const DEFAULT_BANNED: &[&str] = &["thread_rng", "from_entropy", "OsRng"];

impl Rule for UnseededRng {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "mechanism code must use an injected Rng, never ambient entropy \
         (thread_rng/from_entropy/OsRng)"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, cfg, ID, DEFAULT_CRATES, &[]) {
            return;
        }
        let banned = cfg.list(ID, "banned", DEFAULT_BANNED);
        for t in &file.toks {
            if banned.iter().any(|b| t.is_ident(b)) {
                emit(
                    file,
                    ID,
                    t.line,
                    format!(
                        "ambient entropy source `{}` in `{}` — mechanisms must \
                         take an injected `Rng` for reproducible noise",
                        t.text, file.crate_name
                    ),
                    out,
                );
            }
        }
    }
}
