//! `sensitive-egress`: sensitive types must not cross the client/server
//! boundary.
//!
//! The paper's whole mitigation (§3) is *at-source* obfuscation: raw
//! answers and quasi-identifiers (DOB, gender, ZIP — §2's linkage-attack
//! keys) are noised on the client and never reach the server in the clear.
//! This rule makes that structural:
//!
//! 1. In the *forbidden* crates (the wire and the server), a configured
//!    sensitive type may not appear in any public item signature —
//!    `pub fn` parameters/returns, `pub struct`/`enum` bodies, `pub type`
//!    aliases, or `pub use` re-exports.
//! 2. Outside the *allowed* crates (the trusted client side, where these
//!    types legitimately live), a type with a sensitive name may not
//!    derive `Serialize` or `Debug` — the two easiest accidental egress
//!    channels (wire encoding and log output).
//! 3. In the *raw-identity* files (the trace and ε-audit stores, which
//!    are rendered verbatim over HTTP), identity-named values must not
//!    reach an egress sink. This is a per-function taint pass over the
//!    [`crate::flow`] walker: params/fields/locals named after a
//!    person-level entity (`user`, `worker`, `respondent`, …) are taint
//!    sources, taint propagates through assignment and method
//!    receivers, and only taint reaching a format/serialize/log/trace/
//!    audit call fires. Merely *naming* a local `user_id` to compute an
//!    opaque index is fine — that was the false-positive class of the
//!    earlier blanket ident ban.

use crate::config::Config;
use crate::flow;
use crate::lexer::{Tok, TokKind};
use crate::rules::{emit, Rule};
use crate::source::SourceFile;
use crate::tree;
use crate::Diagnostic;

/// See module docs.
pub struct SensitiveEgress;

const ID: &str = "sensitive-egress";

/// Quasi-identifiers, raw-profile types and stable worker identity — the
/// exact fields §2's linkage attack joins on, plus the join key itself.
const DEFAULT_SENSITIVE: &[&str] = &[
    "BirthDate",
    "Gender",
    "ZipCode",
    "StarSign",
    "QuasiIdentifier",
    "PartialProfile",
    "HealthProfile",
    "WorkerProfile",
    "WorkerId",
];

/// Crates whose public API must never mention a sensitive type.
const DEFAULT_FORBIDDEN: &[&str] = &["loki-net", "loki-server"];

/// Crates where the sensitive types are defined and may derive
/// `Serialize`/`Debug` (the at-source, pre-obfuscation side).
const DEFAULT_ALLOWED_DERIVE: &[&str] = &["loki-survey", "loki-platform", "loki-client"];

/// Files whose every record is rendered verbatim over HTTP: the trace
/// store, the ε-audit stream and the continuous-profiling surfaces
/// (phase tables, allocator counters, procfs readings all render on
/// `/v1/profile` / `/v1/procstats`). Identifier hygiene is enforced
/// here, not just public-API hygiene.
const DEFAULT_RAW_IDENTITY_FILES: &[&str] = &[
    "crates/obs/src/trace.rs",
    "crates/obs/src/audit.rs",
    "crates/obs/src/prof.rs",
    "crates/obs/src/alloc.rs",
    "crates/obs/src/procstats.rs",
    // The privacy observatory's serializing surfaces: only k-anonymity
    // bucket counts may leave; a subject id or raw quasi-identifier
    // reaching a sink here is the /v1/privacy leak the rule guards.
    "crates/server/src/agg.rs",
    "crates/attack/src/stream.rs",
];

/// Person-level entity names treated as taint sources in those files
/// (exact ident-token match, so `subject_index` and doc comments pass).
const DEFAULT_RAW_IDENTITY_IDENTS: &[&str] = &[
    "user",
    "user_id",
    "user_index",
    "worker",
    "worker_id",
    "respondent",
    "participant",
];

/// Callee-name substrings that count as egress sinks for the taint
/// pass: string formatting, wire serialization and log/trace/audit
/// emission.
pub const DEFAULT_TAINT_SINKS: &[&str] = &[
    "format",
    "write_fmt",
    "serialize",
    "to_json",
    "log",
    "trace",
    "audit",
    "emit",
    "print",
    "record",
];

impl Rule for SensitiveEgress {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "sensitive types (quasi-identifiers, raw profiles, worker identity) must not \
         appear in net/server public APIs or derive Serialize/Debug outside client crates"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        let sensitive = cfg.list(ID, "sensitive_types", DEFAULT_SENSITIVE);
        let forbidden = cfg.list(ID, "forbidden_crates", DEFAULT_FORBIDDEN);
        let allowed_derive = cfg.list(ID, "allowed_derive_crates", DEFAULT_ALLOWED_DERIVE);

        if forbidden.iter().any(|c| c == &file.crate_name) {
            check_public_signatures(file, &sensitive, out);
        }
        if !allowed_derive.iter().any(|c| c == &file.crate_name) {
            check_derives(file, &sensitive, out);
        }

        let identity_files = cfg.list(ID, "raw_identity_files", DEFAULT_RAW_IDENTITY_FILES);
        if identity_files
            .iter()
            .any(|f| file.rel_path.starts_with(f.as_str()))
        {
            let sources = cfg.list(ID, "raw_identity_idents", DEFAULT_RAW_IDENTITY_IDENTS);
            let sinks = cfg.list(ID, "taint_sinks", DEFAULT_TAINT_SINKS);
            check_identity_taint(file, &sources, &sinks, out);
        }
    }
}

/// Flags identity-named values that reach an egress sink in a
/// raw-identity file. These files are rendered verbatim over HTTP and
/// must format/serialize subjects by opaque `subject_index` only.
fn check_identity_taint(
    file: &SourceFile,
    sources: &[String],
    sinks: &[String],
    out: &mut Vec<Diagnostic>,
) {
    let nodes = tree::build(&file.toks);
    for fun in tree::functions(&nodes) {
        for hit in flow::identity_taint(&fun, sources, sinks) {
            let derived = hit
                .origin
                .as_ref()
                .map(|o| format!(" (derived from `{o}`)"))
                .unwrap_or_default();
            emit(
                file,
                ID,
                hit.line,
                format!(
                    "identity-tainted `{}`{derived} reaches sink `{}` in `{}` — \
                     the trace/audit stores are rendered over HTTP and must emit \
                     opaque `subject_index` values only",
                    hit.ident, hit.sink, fun.name,
                ),
                out,
            );
        }
    }
}

/// Flags sensitive identifiers in public item signatures.
fn check_public_signatures(file: &SourceFile, sensitive: &[String], out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        // `pub(crate)` / `pub(super)` visibility is not cross-crate API.
        if toks.get(i + 1).is_some_and(|t| t.is_op("(")) {
            i += 1;
            continue;
        }
        let Some((kind, kw_idx)) = item_keyword(toks, i + 1) else {
            i += 1; // a struct field or similar — covered by its item scan
            continue;
        };
        let end = match kind {
            ItemKind::Fn => signature_end(toks, kw_idx),
            ItemKind::TypeBody => body_end(toks, kw_idx),
            ItemKind::Terminated => semi_end(toks, kw_idx),
            ItemKind::Skip => {
                i = kw_idx + 1;
                continue;
            }
        };
        for t in &toks[kw_idx..end.min(toks.len())] {
            if t.kind == TokKind::Ident && sensitive.iter().any(|s| s == &t.text) {
                emit(
                    file,
                    ID,
                    t.line,
                    format!(
                        "sensitive type `{}` in public API of `{}` — raw \
                         quasi-identifiers must stay client-side (at-source obfuscation)",
                        t.text, file.crate_name
                    ),
                    out,
                );
            }
        }
        i = end.max(i + 1);
    }
}

/// Flags `#[derive(Serialize|Debug)]` on a type with a sensitive name.
fn check_derives(file: &SourceFile, sensitive: &[String], out: &mut Vec<Diagnostic>) {
    let toks = &file.toks;
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let is_derive = toks[i].is_op("#")
            && toks[i + 1].is_op("[")
            && toks[i + 2].is_ident("derive")
            && toks[i + 3].is_op("(");
        if !is_derive {
            i += 1;
            continue;
        }
        // Collect derived trait names up to the closing `)`.
        let mut j = i + 4;
        let mut leaking: Vec<&str> = Vec::new();
        while let Some(t) = toks.get(j) {
            if t.is_op(")") {
                break;
            }
            if t.is_ident("Serialize") {
                leaking.push("Serialize");
            } else if t.is_ident("Debug") {
                leaking.push("Debug");
            }
            j += 1;
        }
        let attr_line = toks[i].line;
        // Find the annotated item's name: skip to past `]`, then over
        // further attributes / visibility to `struct`/`enum` + Ident.
        let mut k = j;
        while let Some(t) = toks.get(k) {
            if t.is_op("]") {
                k += 1;
                break;
            }
            k += 1;
        }
        let name = item_name_after_attrs(toks, k);
        if let Some(name_tok) = name {
            if !leaking.is_empty() && sensitive.iter().any(|s| s == &name_tok.text) {
                emit(
                    file,
                    ID,
                    attr_line,
                    format!(
                        "sensitive type `{}` derives {} in `{}` — wire/log egress \
                         outside the trusted client crates",
                        name_tok.text,
                        leaking.join("+"),
                        file.crate_name
                    ),
                    out,
                );
            }
        }
        i = k.max(i + 1);
    }
}

enum ItemKind {
    /// `fn` — scan the signature only (to the body `{` or `;`).
    Fn,
    /// `struct` / `enum` / `trait` / `union` — scan the whole body.
    TypeBody,
    /// `type` / `use` / `static` / `const` — scan to `;`.
    Terminated,
    /// `mod` / `impl` — members carry their own `pub`.
    Skip,
}

/// Classifies the item following a `pub`, skipping modifiers
/// (`const fn`, `async`, `unsafe`, `extern "C"`).
fn item_keyword(toks: &[Tok], mut i: usize) -> Option<(ItemKind, usize)> {
    loop {
        let t = toks.get(i)?;
        if t.kind == TokKind::Str {
            i += 1; // extern ABI string
            continue;
        }
        if t.kind != TokKind::Ident {
            return None;
        }
        return match t.text.as_str() {
            "async" | "unsafe" | "extern" => {
                i += 1;
                continue;
            }
            "const" => {
                // `pub const fn` (modifier) vs `pub const NAME: …` (item).
                if toks.get(i + 1).is_some_and(|n| n.is_ident("fn")) {
                    i += 1;
                    continue;
                }
                Some((ItemKind::Terminated, i))
            }
            "fn" => Some((ItemKind::Fn, i)),
            "struct" | "enum" | "trait" | "union" => Some((ItemKind::TypeBody, i)),
            "type" | "use" | "static" => Some((ItemKind::Terminated, i)),
            "mod" | "impl" => Some((ItemKind::Skip, i)),
            _ => None, // a struct field like `pub name: String`
        };
    }
}

/// Token index just past a `fn` signature: the body `{` or terminating `;`.
fn signature_end(toks: &[Tok], mut i: usize) -> usize {
    let mut depth = 0i32; // ()/<> don't matter: `{` can't appear in a sig head
    while let Some(t) = toks.get(i) {
        if t.is_op("(") || t.is_op("[") {
            depth += 1;
        } else if t.is_op(")") || t.is_op("]") {
            depth -= 1;
        } else if depth == 0 && (t.is_op("{") || t.is_op(";")) {
            return i;
        }
        i += 1;
    }
    i
}

/// Token index just past an item's `{…}` body (or its `;` for bodiless
/// forms like `struct Unit;`).
fn body_end(toks: &[Tok], mut i: usize) -> usize {
    while let Some(t) = toks.get(i) {
        if t.is_op(";") {
            return i + 1;
        }
        if t.is_op("{") {
            let mut depth = 0i32;
            while let Some(t2) = toks.get(i) {
                if t2.is_op("{") {
                    depth += 1;
                } else if t2.is_op("}") {
                    depth -= 1;
                    if depth == 0 {
                        return i + 1;
                    }
                }
                i += 1;
            }
            return i;
        }
        i += 1;
    }
    i
}

/// Token index just past the item's terminating `;`.
fn semi_end(toks: &[Tok], mut i: usize) -> usize {
    while let Some(t) = toks.get(i) {
        if t.is_op(";") {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// The type name after optional further attributes and visibility:
/// `…] #[other] pub struct Name` → `Name`.
fn item_name_after_attrs<'a>(toks: &'a [Tok], mut i: usize) -> Option<&'a Tok> {
    loop {
        let t = toks.get(i)?;
        if t.is_op("#") && toks.get(i + 1).is_some_and(|n| n.is_op("[")) {
            let mut depth = 0i32;
            let mut j = i + 1;
            while let Some(t2) = toks.get(j) {
                if t2.is_op("[") {
                    depth += 1;
                } else if t2.is_op("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if t.is_ident("pub") {
            if toks.get(i + 1).is_some_and(|n| n.is_op("(")) {
                // skip `(crate)` etc.
                let mut j = i + 2;
                while toks.get(j).is_some_and(|t2| !t2.is_op(")")) {
                    j += 1;
                }
                i = j + 1;
            } else {
                i += 1;
            }
            continue;
        }
        if t.is_ident("struct") || t.is_ident("enum") || t.is_ident("union") {
            return toks.get(i + 1);
        }
        return None;
    }
}
