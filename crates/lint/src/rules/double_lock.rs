//! `double-lock`: re-acquiring a lock already held on the same path.
//!
//! `std::sync::Mutex` is not reentrant: a second `.lock()` on a mutex
//! the same thread already holds deadlocks at runtime, silently, and a
//! second `RwLock::read()` can deadlock against a queued writer. The
//! guard-liveness walker makes this checkable: at every acquisition we
//! know which canonical lock names are live, so a same-name re-acquire
//! is flagged at the exact line. (Re-acquires hidden behind a same-file
//! call are reported by `lock-order` as a self-cycle.)

use crate::config::Config;
use crate::flow;
use crate::rules::{emit, in_scope, Rule};
use crate::source::SourceFile;
use crate::tree;
use crate::Diagnostic;

/// See module docs.
pub struct DoubleLock;

const ID: &str = "double-lock";

/// Crates with enough locks for this to bite.
const DEFAULT_CRATES: &[&str] = &["loki-server"];

impl Rule for DoubleLock {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "re-acquiring a lock already held on the same path — std mutexes \
         are not reentrant, this deadlocks at runtime"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, cfg, ID, DEFAULT_CRATES, &[]) {
            return;
        }
        let nodes = tree::build(&file.toks);
        for fun in flow::function_flows(&nodes) {
            for acq in &fun.acquires {
                if acq.lock == "<unknown>" {
                    continue;
                }
                if let Some(prev) = acq.held.iter().find(|h| h.lock == acq.lock) {
                    emit(
                        file,
                        ID,
                        acq.line,
                        format!(
                            "lock `{}` re-acquired in `{}` while already held \
                             (acquired line {}) — std locks are not reentrant; \
                             this deadlocks",
                            acq.lock, fun.name, prev.line,
                        ),
                        out,
                    );
                }
            }
        }
    }
}
