//! `panic-path`: no panics on the serving hot path.
//!
//! A panic in `loki-net`/`loki-server` tears down a worker thread on
//! attacker-reachable input — a denial-of-service primitive against the
//! very platform that is supposed to keep answering with noise. Serving
//! code must return typed errors instead. Flagged forms:
//!
//! * `.unwrap()` / `.expect(…)` (`unwrap_or*` variants are fine),
//! * panic macros: `panic!`, `unreachable!`, `todo!`, `unimplemented!`,
//!   `assert!`, `assert_eq!`, `assert_ne!`,
//! * index/slice expressions `x[…]` (use `.get(…)`).
//!
//! Pre-existing sites are grandfathered in the baseline and burned down
//! over time; new ones fail the build.

use crate::config::Config;
use crate::lexer::TokKind;
use crate::rules::{emit, in_scope, Rule};
use crate::source::SourceFile;
use crate::Diagnostic;

/// See module docs.
pub struct PanicPath;

const ID: &str = "panic-path";

const DEFAULT_CRATES: &[&str] = &["loki-net", "loki-server"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

impl Rule for PanicPath {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/indexing in serving code (net/server); \
         return typed errors"
    }

    fn check(&self, file: &SourceFile, cfg: &Config, out: &mut Vec<Diagnostic>) {
        if !in_scope(file, cfg, ID, DEFAULT_CRATES, &[]) {
            return;
        }
        let toks = &file.toks;
        for (i, t) in toks.iter().enumerate() {
            // `.unwrap()` / `.expect(`
            if t.kind == TokKind::Ident && (t.text == "unwrap" || t.text == "expect") {
                let after_dot = i > 0 && toks[i - 1].is_op(".");
                let called = toks.get(i + 1).is_some_and(|n| n.is_op("("));
                if after_dot && called {
                    emit(
                        file,
                        ID,
                        t.line,
                        format!(
                            ".{}() on the serving path — a malformed input becomes \
                             a thread-killing panic; return a typed error",
                            t.text
                        ),
                        out,
                    );
                }
                continue;
            }
            // Panic-family macros: `ident !` then `(`/`[`/`{`.
            if t.kind == TokKind::Ident && PANIC_MACROS.contains(&t.text.as_str()) {
                let bang = toks.get(i + 1).is_some_and(|n| n.is_op("!"));
                let open = toks.get(i + 2).is_some_and(|n| {
                    n.is_op("(") || n.is_op("[") || n.is_op("{")
                });
                if bang && open {
                    emit(
                        file,
                        ID,
                        t.line,
                        format!("`{}!` on the serving path — return a typed error", t.text),
                        out,
                    );
                }
                continue;
            }
            // Index/slice expression: `[` directly after an ident, `)` or `]`.
            if t.is_op("[") && i > 0 {
                let p = &toks[i - 1];
                let indexable =
                    (p.kind == TokKind::Ident && !is_keyword_before_bracket(&p.text))
                        || p.is_op(")")
                        || p.is_op("]");
                if indexable {
                    emit(
                        file,
                        ID,
                        t.line,
                        "index/slice expression on the serving path can panic out of \
                         bounds — use .get(…)"
                            .to_string(),
                        out,
                    );
                }
            }
        }
    }
}

/// Keywords that may directly precede `[` without forming an index
/// expression (`return [a, b]`, `impl Index<…> for T`, …).
fn is_keyword_before_bracket(ident: &str) -> bool {
    matches!(
        ident,
        "return" | "break" | "in" | "as" | "mut" | "const" | "static" | "else" | "match"
    )
}
