//! Demographic attributes — the quasi-identifiers of the paper's attack.
//!
//! §2's surveys harvest, across three seemingly-unrelated surveys:
//!
//! 1. star sign and day/month of birth (the astrology survey),
//! 2. gender and year of birth (the match-making survey),
//! 3. ZIP code (the phone-coverage survey).
//!
//! Combined, these form the (date of birth, gender, ZIP) triple that
//! Sweeney (2000) and Golle (2006) showed uniquely identifies a large
//! fraction of the US population. [`PartialProfile`] models the
//! requester-side accumulation of these fragments; [`QuasiIdentifier`] is
//! the completed triple used for registry matching.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Western zodiac sign, derivable from day/month of birth — which is why
/// an innocuous "what's your star sign?" survey leaks birthday bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum StarSign {
    Aries,
    Taurus,
    Gemini,
    Cancer,
    Leo,
    Virgo,
    Libra,
    Scorpio,
    Sagittarius,
    Capricorn,
    Aquarius,
    Pisces,
}

impl StarSign {
    /// The sign for a day/month of birth.
    ///
    /// # Panics
    /// Panics on an impossible day/month (see [`BirthDate::new`] for the
    /// validated path).
    pub fn from_day_month(day: u8, month: u8) -> StarSign {
        assert!((1..=12).contains(&month) && (1..=31).contains(&day));
        use StarSign::*;
        match (month, day) {
            (3, 21..) | (4, ..=19) => Aries,
            (4, 20..) | (5, ..=20) => Taurus,
            (5, 21..) | (6, ..=20) => Gemini,
            (6, 21..) | (7, ..=22) => Cancer,
            (7, 23..) | (8, ..=22) => Leo,
            (8, 23..) | (9, ..=22) => Virgo,
            (9, 23..) | (10, ..=22) => Libra,
            (10, 23..) | (11, ..=21) => Scorpio,
            (11, 22..) | (12, ..=21) => Sagittarius,
            (12, 22..) | (1, ..=19) => Capricorn,
            (1, 20..) | (2, ..=18) => Aquarius,
            (2, 19..) | (3, ..=20) => Pisces,
            _ => unreachable!("day/month validated above"),
        }
    }

    /// All twelve signs in zodiac order.
    pub fn all() -> [StarSign; 12] {
        use StarSign::*;
        [
            Aries, Taurus, Gemini, Cancer, Leo, Virgo, Libra, Scorpio, Sagittarius, Capricorn,
            Aquarius, Pisces,
        ]
    }
}

/// Gender as collected by the paper's match-making survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Gender {
    Female,
    Male,
}

/// A calendar date of birth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BirthDate {
    /// Year, e.g. 1985.
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31 (validated against the month; February is capped at 28 to
    /// keep the synthetic population leap-year-free).
    pub day: u8,
}

impl BirthDate {
    /// Days in each month (February fixed at 28; the synthetic population
    /// does not model leap years).
    pub const DAYS_IN_MONTH: [u8; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

    /// Creates a validated date.
    pub fn new(year: u16, month: u8, day: u8) -> Option<BirthDate> {
        if !(1..=12).contains(&month) {
            return None;
        }
        let max_day = Self::DAYS_IN_MONTH[(month - 1) as usize];
        if !(1..=max_day).contains(&day) {
            return None;
        }
        Some(BirthDate { year, month, day })
    }

    /// The star sign this date implies.
    pub fn star_sign(&self) -> StarSign {
        StarSign::from_day_month(self.day, self.month)
    }

    /// Day-of-year index (0-based), used to enumerate all 365 birthdays.
    pub fn day_of_year(&self) -> u16 {
        let mut days = 0u16;
        for m in 0..(self.month - 1) as usize {
            days += u16::from(Self::DAYS_IN_MONTH[m]);
        }
        days + u16::from(self.day) - 1
    }

    /// Inverse of [`BirthDate::day_of_year`] for a given year.
    ///
    /// # Panics
    /// Panics if `doy >= 365`.
    pub fn from_day_of_year(year: u16, doy: u16) -> BirthDate {
        assert!(doy < 365, "day of year {doy} out of range");
        let mut rem = doy;
        for (m, &len) in Self::DAYS_IN_MONTH.iter().enumerate() {
            if rem < u16::from(len) {
                return BirthDate {
                    year,
                    month: (m + 1) as u8,
                    day: (rem + 1) as u8,
                };
            }
            rem -= u16::from(len);
        }
        unreachable!("doy < 365 always lands in a month")
    }
}

impl fmt::Display for BirthDate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

/// A 5-digit US-style ZIP code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ZipCode(pub u32);

impl ZipCode {
    /// Creates a ZIP, validating the 5-digit range.
    pub fn new(code: u32) -> Option<ZipCode> {
        if code <= 99_999 {
            Some(ZipCode(code))
        } else {
            None
        }
    }
}

impl fmt::Display for ZipCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:05}", self.0)
    }
}

/// The completed (date of birth, gender, ZIP) quasi-identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QuasiIdentifier {
    /// Full date of birth.
    pub birth: BirthDate,
    /// Gender.
    pub gender: Gender,
    /// Home ZIP code.
    pub zip: ZipCode,
}

/// Requester-side accumulation of demographic fragments across surveys.
///
/// Survey 1 contributes day/month, survey 2 gender + year, survey 3 ZIP;
/// [`PartialProfile::quasi_identifier`] completes once all fragments are
/// present.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PartialProfile {
    /// Day of birth (1–31), if disclosed.
    pub day: Option<u8>,
    /// Month of birth (1–12), if disclosed.
    pub month: Option<u8>,
    /// Year of birth, if disclosed.
    pub year: Option<u16>,
    /// Gender, if disclosed.
    pub gender: Option<Gender>,
    /// ZIP code, if disclosed.
    pub zip: Option<ZipCode>,
}

impl PartialProfile {
    /// An empty profile.
    pub fn new() -> PartialProfile {
        PartialProfile::default()
    }

    /// Merges another fragment into this one. Later disclosures win on
    /// conflict (the adversary trusts the most recent answer).
    pub fn merge(&mut self, other: &PartialProfile) {
        if other.day.is_some() {
            self.day = other.day;
        }
        if other.month.is_some() {
            self.month = other.month;
        }
        if other.year.is_some() {
            self.year = other.year;
        }
        if other.gender.is_some() {
            self.gender = other.gender;
        }
        if other.zip.is_some() {
            self.zip = other.zip;
        }
    }

    /// Completes the quasi-identifier if every fragment is present and the
    /// date is valid.
    pub fn quasi_identifier(&self) -> Option<QuasiIdentifier> {
        let birth = BirthDate::new(self.year?, self.month?, self.day?)?;
        Some(QuasiIdentifier {
            birth,
            gender: self.gender?,
            zip: self.zip?,
        })
    }

    /// How many of the five fragments are disclosed.
    pub fn disclosed_count(&self) -> usize {
        usize::from(self.day.is_some())
            + usize::from(self.month.is_some())
            + usize::from(self.year.is_some())
            + usize::from(self.gender.is_some())
            + usize::from(self.zip.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_sign_boundaries() {
        assert_eq!(StarSign::from_day_month(21, 3), StarSign::Aries);
        assert_eq!(StarSign::from_day_month(20, 3), StarSign::Pisces);
        assert_eq!(StarSign::from_day_month(19, 4), StarSign::Aries);
        assert_eq!(StarSign::from_day_month(20, 4), StarSign::Taurus);
        assert_eq!(StarSign::from_day_month(22, 12), StarSign::Capricorn);
        assert_eq!(StarSign::from_day_month(19, 1), StarSign::Capricorn);
        assert_eq!(StarSign::from_day_month(20, 1), StarSign::Aquarius);
    }

    #[test]
    fn every_day_has_a_sign() {
        for month in 1..=12u8 {
            for day in 1..=BirthDate::DAYS_IN_MONTH[(month - 1) as usize] {
                let _ = StarSign::from_day_month(day, month);
            }
        }
    }

    #[test]
    fn birth_date_validation() {
        assert!(BirthDate::new(1985, 2, 29).is_none()); // no leap years modeled
        assert!(BirthDate::new(1985, 2, 28).is_some());
        assert!(BirthDate::new(1985, 13, 1).is_none());
        assert!(BirthDate::new(1985, 0, 1).is_none());
        assert!(BirthDate::new(1985, 4, 31).is_none());
        assert!(BirthDate::new(1985, 4, 30).is_some());
    }

    #[test]
    fn day_of_year_round_trips() {
        for doy in 0..365 {
            let d = BirthDate::from_day_of_year(1990, doy);
            assert_eq!(d.day_of_year(), doy, "doy {doy} -> {d}");
        }
    }

    #[test]
    fn day_of_year_known_values() {
        assert_eq!(BirthDate::new(2000, 1, 1).unwrap().day_of_year(), 0);
        assert_eq!(BirthDate::new(2000, 2, 1).unwrap().day_of_year(), 31);
        assert_eq!(BirthDate::new(2000, 12, 31).unwrap().day_of_year(), 364);
    }

    #[test]
    fn zip_validation_and_display() {
        assert!(ZipCode::new(100_000).is_none());
        let z = ZipCode::new(2033).unwrap();
        assert_eq!(z.to_string(), "02033");
    }

    #[test]
    fn profile_completes_only_when_full() {
        let mut p = PartialProfile::new();
        assert_eq!(p.quasi_identifier(), None);
        assert_eq!(p.disclosed_count(), 0);

        // Survey 1: day/month.
        p.merge(&PartialProfile {
            day: Some(14),
            month: Some(7),
            ..Default::default()
        });
        assert_eq!(p.quasi_identifier(), None);
        assert_eq!(p.disclosed_count(), 2);

        // Survey 2: gender + year.
        p.merge(&PartialProfile {
            year: Some(1985),
            gender: Some(Gender::Female),
            ..Default::default()
        });
        assert_eq!(p.quasi_identifier(), None);

        // Survey 3: ZIP completes the triple.
        p.merge(&PartialProfile {
            zip: ZipCode::new(90210),
            ..Default::default()
        });
        let qi = p.quasi_identifier().unwrap();
        assert_eq!(qi.birth, BirthDate::new(1985, 7, 14).unwrap());
        assert_eq!(qi.gender, Gender::Female);
        assert_eq!(qi.zip.0, 90210);
    }

    #[test]
    fn merge_later_disclosure_wins() {
        let mut p = PartialProfile {
            zip: ZipCode::new(11111),
            ..Default::default()
        };
        p.merge(&PartialProfile {
            zip: ZipCode::new(22222),
            ..Default::default()
        });
        assert_eq!(p.zip.unwrap().0, 22222);
    }

    #[test]
    fn invalid_accumulated_date_yields_none() {
        let p = PartialProfile {
            day: Some(31),
            month: Some(2),
            year: Some(1980),
            gender: Some(Gender::Male),
            zip: ZipCode::new(12345),
        };
        assert_eq!(p.quasi_identifier(), None);
    }

    #[test]
    fn birth_date_sign_consistency() {
        let d = BirthDate::new(1991, 8, 2).unwrap();
        assert_eq!(d.star_sign(), StarSign::Leo);
    }
}
