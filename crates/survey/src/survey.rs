//! Survey definitions and the builder that validates them.

use crate::question::{Question, QuestionId, QuestionKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Globally unique survey identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SurveyId(pub u64);

impl fmt::Display for SurveyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "survey-{}", self.0)
    }
}

/// A survey: an ordered list of questions plus marketplace metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Survey {
    /// Unique identifier.
    pub id: SurveyId,
    /// Short title shown in the app's survey list (Fig. 1(a)).
    pub title: String,
    /// Longer description shown before starting.
    pub description: String,
    /// Questions in display order.
    pub questions: Vec<Question>,
    /// Payment per completed response, in US cents (AMT-style micro
    /// payment; the paper's whole attack cost < $30).
    pub reward_cents: u32,
    /// Pairs of question ids that ask the same thing in different words —
    /// the redundancy the paper used to filter random responders.
    pub redundancy_pairs: Vec<(QuestionId, QuestionId)>,
}

impl Survey {
    /// Looks up a question by id.
    pub fn question(&self, id: QuestionId) -> Option<&Question> {
        self.questions.iter().find(|q| q.id == id)
    }

    /// Number of questions.
    pub fn len(&self) -> usize {
        self.questions.len()
    }

    /// Whether the survey has no questions (builders forbid this, but
    /// deserialized data may be arbitrary).
    pub fn is_empty(&self) -> bool {
        self.questions.is_empty()
    }

    /// Ids of questions whose answers are obfuscatable (countable response
    /// set).
    pub fn obfuscatable_questions(&self) -> impl Iterator<Item = &Question> {
        self.questions.iter().filter(|q| q.kind.is_obfuscatable())
    }

    /// Ids of questions marked sensitive.
    pub fn sensitive_questions(&self) -> impl Iterator<Item = &Question> {
        self.questions.iter().filter(|q| q.sensitive)
    }
}

/// Step-by-step construction of a [`Survey`] with validation at `build()`.
#[derive(Debug, Clone)]
pub struct SurveyBuilder {
    id: SurveyId,
    title: String,
    description: String,
    questions: Vec<Question>,
    reward_cents: u32,
    redundancy_pairs: Vec<(QuestionId, QuestionId)>,
}

/// Errors detected when finalizing a survey.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SurveyError {
    /// The survey has no questions.
    NoQuestions,
    /// A question's kind parameters are invalid (message from the kind).
    BadQuestion {
        /// Which question.
        id: QuestionId,
        /// What was wrong.
        reason: String,
    },
    /// A redundancy pair references a missing question or pairs a question
    /// with itself.
    BadRedundancyPair {
        /// The offending pair.
        pair: (QuestionId, QuestionId),
    },
    /// A redundancy pair links questions of different kinds (their answers
    /// could never be compared for consistency).
    MismatchedRedundancyKinds {
        /// The offending pair.
        pair: (QuestionId, QuestionId),
    },
}

impl fmt::Display for SurveyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurveyError::NoQuestions => write!(f, "survey has no questions"),
            SurveyError::BadQuestion { id, reason } => write!(f, "question {id}: {reason}"),
            SurveyError::BadRedundancyPair { pair } => {
                write!(f, "redundancy pair ({}, {}) is invalid", pair.0, pair.1)
            }
            SurveyError::MismatchedRedundancyKinds { pair } => write!(
                f,
                "redundancy pair ({}, {}) links questions of different kinds",
                pair.0, pair.1
            ),
        }
    }
}

impl std::error::Error for SurveyError {}

impl SurveyBuilder {
    /// Starts a survey definition.
    pub fn new(id: SurveyId, title: impl Into<String>) -> SurveyBuilder {
        SurveyBuilder {
            id,
            title: title.into(),
            description: String::new(),
            questions: Vec::new(),
            reward_cents: 0,
            redundancy_pairs: Vec::new(),
        }
    }

    /// Sets the description.
    pub fn description(mut self, text: impl Into<String>) -> SurveyBuilder {
        self.description = text.into();
        self
    }

    /// Sets the per-response reward.
    pub fn reward_cents(mut self, cents: u32) -> SurveyBuilder {
        self.reward_cents = cents;
        self
    }

    /// Appends a question; ids are assigned in definition order. Returns
    /// the id so redundancy pairs can reference it.
    pub fn question(
        &mut self,
        text: impl Into<String>,
        kind: QuestionKind,
        sensitive: bool,
    ) -> QuestionId {
        let id = QuestionId(self.questions.len() as u32);
        self.questions.push(Question {
            id,
            text: text.into(),
            kind,
            sensitive,
        });
        id
    }

    /// Declares two questions as redundant phrasings of the same fact.
    pub fn redundant(&mut self, a: QuestionId, b: QuestionId) {
        self.redundancy_pairs.push((a, b));
    }

    /// Validates and produces the survey.
    pub fn build(self) -> Result<Survey, SurveyError> {
        if self.questions.is_empty() {
            return Err(SurveyError::NoQuestions);
        }
        for q in &self.questions {
            q.kind
                .validate()
                .map_err(|reason| SurveyError::BadQuestion { id: q.id, reason })?;
        }
        let find = |id: QuestionId| self.questions.iter().find(|q| q.id == id);
        for &pair in &self.redundancy_pairs {
            let (a, b) = pair;
            if a == b {
                return Err(SurveyError::BadRedundancyPair { pair });
            }
            match (find(a), find(b)) {
                (Some(qa), Some(qb)) => {
                    if std::mem::discriminant(&qa.kind) != std::mem::discriminant(&qb.kind) {
                        return Err(SurveyError::MismatchedRedundancyKinds { pair });
                    }
                }
                _ => return Err(SurveyError::BadRedundancyPair { pair }),
            }
        }
        Ok(Survey {
            id: self.id,
            title: self.title,
            description: self.description,
            questions: self.questions,
            reward_cents: self.reward_cents,
            redundancy_pairs: self.redundancy_pairs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_sequential_ids() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        let a = b.question("one", QuestionKind::likert5(), false);
        let c = b.question("two", QuestionKind::likert5(), false);
        assert_eq!(a, QuestionId(0));
        assert_eq!(c, QuestionId(1));
        let s = b.build().unwrap();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_survey_rejected() {
        let b = SurveyBuilder::new(SurveyId(1), "t");
        assert_eq!(b.build().unwrap_err(), SurveyError::NoQuestions);
    }

    #[test]
    fn bad_kind_rejected_with_id() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        b.question("ok", QuestionKind::likert5(), false);
        b.question("bad", QuestionKind::Rating { min: 2, max: 2 }, false);
        match b.build().unwrap_err() {
            SurveyError::BadQuestion { id, .. } => assert_eq!(id, QuestionId(1)),
            e => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn self_pair_rejected() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        let q = b.question("one", QuestionKind::likert5(), false);
        b.redundant(q, q);
        assert!(matches!(
            b.build().unwrap_err(),
            SurveyError::BadRedundancyPair { .. }
        ));
    }

    #[test]
    fn dangling_pair_rejected() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        let q = b.question("one", QuestionKind::likert5(), false);
        b.redundant(q, QuestionId(99));
        assert!(matches!(
            b.build().unwrap_err(),
            SurveyError::BadRedundancyPair { .. }
        ));
    }

    #[test]
    fn mismatched_pair_kinds_rejected() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        let a = b.question("rate", QuestionKind::likert5(), false);
        let c = b.question(
            "pick",
            QuestionKind::MultipleChoice {
                options: vec!["x".into(), "y".into()],
            },
            false,
        );
        b.redundant(a, c);
        assert!(matches!(
            b.build().unwrap_err(),
            SurveyError::MismatchedRedundancyKinds { .. }
        ));
    }

    #[test]
    fn valid_pair_accepted() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        let a = b.question("how often do you smoke?", QuestionKind::likert5(), true);
        let c = b.question("rate your smoking frequency", QuestionKind::likert5(), true);
        b.redundant(a, c);
        let s = b.build().unwrap();
        assert_eq!(s.redundancy_pairs, vec![(a, c)]);
        assert_eq!(s.sensitive_questions().count(), 2);
    }

    #[test]
    fn obfuscatable_filter() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        b.question("rate", QuestionKind::likert5(), false);
        b.question("say anything", QuestionKind::FreeText, false);
        let s = b.build().unwrap();
        assert_eq!(s.obfuscatable_questions().count(), 1);
    }

    #[test]
    fn question_lookup() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        let a = b.question("one", QuestionKind::likert5(), false);
        let s = b.build().unwrap();
        assert!(s.question(a).is_some());
        assert!(s.question(QuestionId(9)).is_none());
    }

    #[test]
    fn survey_serde_round_trip() {
        let mut b = SurveyBuilder::new(SurveyId(7), "astrology");
        b.question("your star sign?", QuestionKind::likert5(), true);
        let s = b.build().unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: Survey = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
