//! Redundancy-based filtering of random responders.
//!
//! §2 of the paper: "We designed our surveys with sufficient redundancy to
//! help us identify and filter out users who gave random responses." Two
//! mechanisms are modeled:
//!
//! * **Paired consistency questions** — the same fact asked twice in
//!   different words; an attentive respondent answers (nearly) identically,
//!   a random responder does not.
//! * **Attention checks** — "select option 3 for this question"; failure is
//!   near-certain for a random responder.
//!
//! [`ConsistencyFilter`] scores each response and classifies it, exposing
//! the precision/recall trade-off that experiment EXP-8 sweeps.

use crate::question::{Answer, QuestionId};
use crate::response::{Response, ResponseSet};
use crate::survey::Survey;
use serde::{Deserialize, Serialize};

/// An attention-check expectation: question `q` must be answered exactly
/// `expected`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionCheck {
    /// The instructed question.
    pub question: QuestionId,
    /// The instructed answer.
    pub expected: Answer,
}

/// Consistency report for one response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyScore {
    /// Worker the score belongs to.
    pub worker: String,
    /// Mean absolute disagreement across redundancy pairs with comparable
    /// numeric answers (`None` if the survey has no usable pairs).
    pub mean_pair_disagreement: Option<f64>,
    /// Number of attention checks failed.
    pub failed_checks: usize,
    /// Number of attention checks evaluated.
    pub total_checks: usize,
}

impl ConsistencyScore {
    /// Whether the response passes at the given thresholds: disagreement at
    /// most `max_disagreement` (when measurable) and no failed checks.
    pub fn passes(&self, max_disagreement: f64) -> bool {
        if self.failed_checks > 0 {
            return false;
        }
        match self.mean_pair_disagreement {
            Some(d) => d <= max_disagreement,
            None => true,
        }
    }
}

/// Scores responses against a survey's redundancy pairs and a set of
/// attention checks.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyFilter {
    checks: Vec<AttentionCheck>,
    /// Maximum tolerated mean absolute disagreement across pairs.
    pub max_disagreement: f64,
}

impl ConsistencyFilter {
    /// Creates a filter with a disagreement threshold (in answer units; a
    /// 1-point tolerance on a 5-point scale is the default the paper-style
    /// surveys use).
    pub fn new(max_disagreement: f64) -> ConsistencyFilter {
        assert!(
            max_disagreement >= 0.0,
            "threshold must be non-negative, got {max_disagreement}"
        );
        ConsistencyFilter {
            checks: Vec::new(),
            max_disagreement,
        }
    }

    /// Adds an attention check.
    pub fn attention_check(&mut self, question: QuestionId, expected: Answer) {
        self.checks.push(AttentionCheck { question, expected });
    }

    /// Scores one response.
    pub fn score(&self, survey: &Survey, response: &Response) -> ConsistencyScore {
        let mut disagreements = Vec::new();
        for &(a, b) in &survey.redundancy_pairs {
            let (va, vb) = (
                response.get(a).and_then(Answer::as_f64),
                response.get(b).and_then(Answer::as_f64),
            );
            if let (Some(va), Some(vb)) = (va, vb) {
                disagreements.push((va - vb).abs());
            } else if let (Some(Answer::Choice(ca)), Some(Answer::Choice(cb))) =
                (response.get(a), response.get(b))
            {
                // Choice pairs: disagreement is 0/1.
                disagreements.push(if ca == cb { 0.0 } else { 1.0 });
            }
        }
        let mean_pair_disagreement = if disagreements.is_empty() {
            None
        } else {
            Some(disagreements.iter().sum::<f64>() / disagreements.len() as f64)
        };
        let mut failed = 0;
        for check in &self.checks {
            match response.get(check.question) {
                Some(a) if *a == check.expected => {}
                _ => failed += 1,
            }
        }
        ConsistencyScore {
            worker: response.worker.clone(),
            mean_pair_disagreement,
            failed_checks: failed,
            total_checks: self.checks.len(),
        }
    }

    /// Splits a response set into (kept, rejected) by the filter.
    pub fn filter(&self, survey: &Survey, set: &ResponseSet) -> (ResponseSet, ResponseSet) {
        let mut kept = ResponseSet::new();
        let mut rejected = ResponseSet::new();
        for r in set.iter() {
            if self.score(survey, r).passes(self.max_disagreement) {
                kept.push(r.clone());
            } else {
                rejected.push(r.clone());
            }
        }
        (kept, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::QuestionKind;
    use crate::survey::{SurveyBuilder, SurveyId};

    /// A survey with one redundancy pair (q0 ~ q1) and a spare question q2.
    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        let a = b.question("how often do you smoke?", QuestionKind::likert5(), true);
        let c = b.question("rate your smoking frequency", QuestionKind::likert5(), true);
        b.question("rate your cough", QuestionKind::likert5(), true);
        b.redundant(a, c);
        b.build().unwrap()
    }

    fn response(worker: &str, answers: [f64; 3]) -> Response {
        let mut r = Response::new(worker, SurveyId(1));
        for (i, v) in answers.into_iter().enumerate() {
            r.answer(QuestionId(i as u32), Answer::Rating(v));
        }
        r
    }

    #[test]
    fn consistent_response_passes() {
        let s = survey();
        let f = ConsistencyFilter::new(1.0);
        let score = f.score(&s, &response("w", [4.0, 4.0, 2.0]));
        assert_eq!(score.mean_pair_disagreement, Some(0.0));
        assert!(score.passes(1.0));
    }

    #[test]
    fn inconsistent_response_fails() {
        let s = survey();
        let f = ConsistencyFilter::new(1.0);
        let score = f.score(&s, &response("w", [1.0, 5.0, 2.0]));
        assert_eq!(score.mean_pair_disagreement, Some(4.0));
        assert!(!score.passes(1.0));
    }

    #[test]
    fn attention_check_failure_rejects_regardless_of_pairs() {
        let s = survey();
        let mut f = ConsistencyFilter::new(1.0);
        f.attention_check(QuestionId(2), Answer::Rating(3.0));
        let score = f.score(&s, &response("w", [4.0, 4.0, 2.0]));
        assert_eq!(score.failed_checks, 1);
        assert!(!score.passes(1.0));
        let ok = f.score(&s, &response("w", [4.0, 4.0, 3.0]));
        assert_eq!(ok.failed_checks, 0);
        assert!(ok.passes(1.0));
    }

    #[test]
    fn missing_check_answer_counts_as_failure() {
        let s = survey();
        let mut f = ConsistencyFilter::new(1.0);
        f.attention_check(QuestionId(2), Answer::Rating(3.0));
        let mut r = Response::new("w", SurveyId(1));
        r.answer(QuestionId(0), Answer::Rating(4.0));
        r.answer(QuestionId(1), Answer::Rating(4.0));
        let score = f.score(&s, &r);
        assert_eq!(score.failed_checks, 1);
    }

    #[test]
    fn no_pairs_yields_none_and_passes() {
        let mut b = SurveyBuilder::new(SurveyId(2), "no pairs");
        b.question("rate", QuestionKind::likert5(), false);
        let s = b.build().unwrap();
        let f = ConsistencyFilter::new(0.5);
        let mut r = Response::new("w", SurveyId(2));
        r.answer(QuestionId(0), Answer::Rating(2.0));
        let score = f.score(&s, &r);
        assert_eq!(score.mean_pair_disagreement, None);
        assert!(score.passes(0.5));
    }

    #[test]
    fn filter_splits_sets() {
        let s = survey();
        let f = ConsistencyFilter::new(1.0);
        let mut set = ResponseSet::new();
        set.push(response("good", [4.0, 4.0, 2.0]));
        set.push(response("sloppy", [4.0, 3.0, 2.0])); // diff 1.0: passes
        set.push(response("random", [1.0, 5.0, 3.0])); // diff 4.0: fails
        let (kept, rejected) = f.filter(&s, &set);
        assert_eq!(kept.len(), 2);
        assert_eq!(rejected.len(), 1);
        assert!(rejected.by_worker("random").is_some());
    }

    #[test]
    fn choice_pairs_scored_binary() {
        let mut b = SurveyBuilder::new(SurveyId(3), "choices");
        let a = b.question(
            "pick",
            QuestionKind::MultipleChoice {
                options: vec!["x".into(), "y".into()],
            },
            false,
        );
        let c = b.question(
            "pick again",
            QuestionKind::MultipleChoice {
                options: vec!["x".into(), "y".into()],
            },
            false,
        );
        b.redundant(a, c);
        let s = b.build().unwrap();
        let f = ConsistencyFilter::new(0.0);
        let mut same = Response::new("same", SurveyId(3));
        same.answer(a, Answer::Choice(1));
        same.answer(c, Answer::Choice(1));
        assert!(f.score(&s, &same).passes(0.0));
        let mut diff = Response::new("diff", SurveyId(3));
        diff.answer(a, Answer::Choice(0));
        diff.answer(c, Answer::Choice(1));
        assert!(!f.score(&s, &diff).passes(0.0));
    }

    #[test]
    #[should_panic(expected = "threshold must be non-negative")]
    fn negative_threshold_rejected() {
        let _ = ConsistencyFilter::new(-0.1);
    }
}
