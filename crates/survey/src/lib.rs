//! # loki-survey — survey, question and response data model
//!
//! The shared vocabulary of the Loki reproduction: every other crate
//! (marketplace simulator, attack engine, obfuscation core, HTTP backend)
//! speaks in these types.
//!
//! Design notes tied to the paper:
//!
//! * **Countable response sets.** §3.1 restricts obfuscation to question
//!   types "in which the response set is countable (this excludes free-text
//!   responses)". [`question::QuestionKind`] models ratings, Likert scales,
//!   multiple choice and bounded numeric answers as *obfuscatable*, and
//!   free text as explicitly non-obfuscatable; the obfuscation layer in
//!   `loki-core` rejects free text at the type level.
//! * **Redundancy.** §2: "We designed our surveys with sufficient
//!   redundancy to help us identify and filter out users who gave random
//!   responses." [`redundancy`] implements paired consistency questions,
//!   attention checks and the resulting filter.
//! * **Quasi-identifiers.** §2's attack harvests date of birth, gender and
//!   ZIP code across three surveys; [`demographics`] models those
//!   attributes, partial disclosures, and their merge into a full
//!   quasi-identifier.

//! # Example
//!
//! ```
//! use loki_survey::question::{Answer, QuestionKind};
//! use loki_survey::response::Response;
//! use loki_survey::survey::{SurveyBuilder, SurveyId};
//!
//! let mut builder = SurveyBuilder::new(SurveyId(1), "Rate your lecturers");
//! let q = builder.question("Rate Prof. Ada", QuestionKind::likert5(), false);
//! let survey = builder.build().unwrap();
//!
//! let mut response = Response::new("worker-7", survey.id);
//! response.answer(q, Answer::Rating(4.0));
//! assert!(response.validate(&survey).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod demographics;
pub mod question;
pub mod redundancy;
pub mod response;
pub mod survey;

pub use demographics::{BirthDate, Gender, PartialProfile, QuasiIdentifier, StarSign, ZipCode};
pub use question::{Answer, Question, QuestionId, QuestionKind};
pub use response::{Response, ResponseSet};
pub use survey::{Survey, SurveyBuilder, SurveyId};
