//! Questions and answers.
//!
//! A question's *kind* determines both how answers are validated and
//! whether at-source obfuscation applies: every kind with a countable
//! response set is obfuscatable; free text is not (§3.1 of the paper).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a question within a survey (stable, assigned by the
/// builder in definition order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct QuestionId(pub u32);

impl fmt::Display for QuestionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// The response type of a question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuestionKind {
    /// A rating on an inclusive integer scale, e.g. 1–5 stars. This is the
    /// question type the Loki prototype ships (Fig. 1(b)).
    Rating {
        /// Lowest rating (inclusive).
        min: u8,
        /// Highest rating (inclusive).
        max: u8,
    },
    /// A single selection among named options.
    MultipleChoice {
        /// The option labels, in display order.
        options: Vec<String>,
    },
    /// A bounded numeric answer (e.g. "year of birth").
    Numeric {
        /// Lowest accepted value (inclusive).
        min: i64,
        /// Highest accepted value (inclusive).
        max: i64,
    },
    /// Free-form text. **Not obfuscatable** — the response set is not
    /// countable; the paper explicitly excludes it.
    FreeText,
}

impl QuestionKind {
    /// A conventional 5-point Likert scale.
    pub fn likert5() -> QuestionKind {
        QuestionKind::Rating { min: 1, max: 5 }
    }

    /// Whether at-source obfuscation applies to this kind (countable
    /// response set).
    pub fn is_obfuscatable(&self) -> bool {
        !matches!(self, QuestionKind::FreeText)
    }

    /// The width of the answer range, used as the sensitivity of a single
    /// answer in the local model. `None` for kinds without a numeric range.
    pub fn numeric_range(&self) -> Option<f64> {
        match self {
            QuestionKind::Rating { min, max } => Some(f64::from(*max) - f64::from(*min)),
            QuestionKind::Numeric { min, max } => Some((*max - *min) as f64),
            QuestionKind::MultipleChoice { .. } | QuestionKind::FreeText => None,
        }
    }

    /// Validates the kind's own parameters (builder invariant).
    pub(crate) fn validate(&self) -> Result<(), String> {
        match self {
            QuestionKind::Rating { min, max } => {
                if min >= max {
                    Err(format!("rating scale needs min < max, got {min}..{max}"))
                } else {
                    Ok(())
                }
            }
            QuestionKind::MultipleChoice { options } => {
                if options.len() < 2 {
                    Err(format!(
                        "multiple choice needs at least 2 options, got {}",
                        options.len()
                    ))
                } else {
                    Ok(())
                }
            }
            QuestionKind::Numeric { min, max } => {
                if min >= max {
                    Err(format!("numeric range needs min < max, got {min}..{max}"))
                } else {
                    Ok(())
                }
            }
            QuestionKind::FreeText => Ok(()),
        }
    }
}

/// A survey question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Question {
    /// Identifier within the survey.
    pub id: QuestionId,
    /// The prompt shown to the respondent.
    pub text: String,
    /// Response type.
    pub kind: QuestionKind,
    /// Whether the answer is considered sensitive personal information
    /// (used by the attack experiments to label what leaks).
    pub sensitive: bool,
}

impl Question {
    /// Checks that `answer` is a valid response to this question.
    pub fn validate_answer(&self, answer: &Answer) -> Result<(), AnswerError> {
        match (&self.kind, answer) {
            (QuestionKind::Rating { min, max }, Answer::Rating(v)) => {
                if !v.is_finite() {
                    return Err(AnswerError::NotFinite);
                }
                // Obfuscated ratings may legitimately fall outside the raw
                // scale (Fig. 1(c) shows noisy values like 5.74); raw
                // answers must be on-scale. Validation here enforces the
                // *raw* contract; obfuscated uploads use `Answer::Obfuscated`.
                if *v < f64::from(*min) || *v > f64::from(*max) {
                    Err(AnswerError::OutOfRange {
                        got: *v,
                        min: f64::from(*min),
                        max: f64::from(*max),
                    })
                } else {
                    Ok(())
                }
            }
            (QuestionKind::Rating { .. }, Answer::Obfuscated(v)) => {
                if v.is_finite() {
                    Ok(())
                } else {
                    Err(AnswerError::NotFinite)
                }
            }
            (QuestionKind::MultipleChoice { options }, Answer::Choice(i)) => {
                if *i < options.len() {
                    Ok(())
                } else {
                    Err(AnswerError::ChoiceOutOfRange {
                        got: *i,
                        len: options.len(),
                    })
                }
            }
            (QuestionKind::Numeric { min, max }, Answer::Numeric(v)) => {
                if v < min || v > max {
                    Err(AnswerError::OutOfRange {
                        got: *v as f64,
                        min: *min as f64,
                        max: *max as f64,
                    })
                } else {
                    Ok(())
                }
            }
            (QuestionKind::Numeric { .. }, Answer::Obfuscated(v)) => {
                if v.is_finite() {
                    Ok(())
                } else {
                    Err(AnswerError::NotFinite)
                }
            }
            (QuestionKind::FreeText, Answer::Text(_)) => Ok(()),
            _ => Err(AnswerError::KindMismatch),
        }
    }
}

/// A respondent's answer to one question.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Answer {
    /// Raw rating on the question's scale.
    Rating(f64),
    /// Index into a multiple-choice question's options.
    Choice(usize),
    /// Raw numeric value.
    Numeric(i64),
    /// Free text.
    Text(String),
    /// An at-source obfuscated value (noisy rating or numeric); may fall
    /// outside the raw scale.
    Obfuscated(f64),
}

impl Answer {
    /// The answer as a real number, if it has one (ratings, numerics and
    /// obfuscated values; choices are indices, not magnitudes).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Answer::Rating(v) | Answer::Obfuscated(v) => Some(*v),
            Answer::Numeric(v) => Some(*v as f64),
            Answer::Choice(_) | Answer::Text(_) => None,
        }
    }

    /// Whether this answer went through at-source obfuscation.
    pub fn is_obfuscated(&self) -> bool {
        matches!(self, Answer::Obfuscated(_))
    }
}

/// Why an answer failed validation.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerError {
    /// The answer's variant doesn't match the question's kind.
    KindMismatch,
    /// The value is NaN or infinite.
    NotFinite,
    /// Numeric/rating value outside the declared range.
    OutOfRange {
        /// Offending value.
        got: f64,
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// Choice index beyond the option list.
    ChoiceOutOfRange {
        /// Offending index.
        got: usize,
        /// Number of options.
        len: usize,
    },
}

impl fmt::Display for AnswerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerError::KindMismatch => write!(f, "answer kind does not match question kind"),
            AnswerError::NotFinite => write!(f, "answer value is not finite"),
            AnswerError::OutOfRange { got, min, max } => {
                write!(f, "value {got} outside [{min}, {max}]")
            }
            AnswerError::ChoiceOutOfRange { got, len } => {
                write!(f, "choice {got} outside 0..{len}")
            }
        }
    }
}

impl std::error::Error for AnswerError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn rating_q() -> Question {
        Question {
            id: QuestionId(0),
            text: "Rate this lecturer".into(),
            kind: QuestionKind::Rating { min: 1, max: 5 },
            sensitive: false,
        }
    }

    #[test]
    fn likert5_is_1_to_5() {
        assert_eq!(QuestionKind::likert5(), QuestionKind::Rating { min: 1, max: 5 });
    }

    #[test]
    fn free_text_is_not_obfuscatable() {
        assert!(!QuestionKind::FreeText.is_obfuscatable());
        assert!(QuestionKind::likert5().is_obfuscatable());
        assert!(QuestionKind::MultipleChoice {
            options: vec!["a".into(), "b".into()]
        }
        .is_obfuscatable());
    }

    #[test]
    fn numeric_range_is_scale_width() {
        assert_eq!(QuestionKind::likert5().numeric_range(), Some(4.0));
        assert_eq!(
            QuestionKind::Numeric { min: 1940, max: 2000 }.numeric_range(),
            Some(60.0)
        );
        assert_eq!(QuestionKind::FreeText.numeric_range(), None);
    }

    #[test]
    fn rating_validation() {
        let q = rating_q();
        assert!(q.validate_answer(&Answer::Rating(3.0)).is_ok());
        assert!(q.validate_answer(&Answer::Rating(1.0)).is_ok());
        assert!(q.validate_answer(&Answer::Rating(5.0)).is_ok());
        assert!(matches!(
            q.validate_answer(&Answer::Rating(5.5)),
            Err(AnswerError::OutOfRange { .. })
        ));
        assert!(matches!(
            q.validate_answer(&Answer::Rating(f64::NAN)),
            Err(AnswerError::NotFinite)
        ));
        assert!(matches!(
            q.validate_answer(&Answer::Choice(1)),
            Err(AnswerError::KindMismatch)
        ));
    }

    #[test]
    fn obfuscated_rating_may_leave_scale() {
        // Fig. 1(c): noisy ratings like 5.74 or -0.3 are legitimate uploads.
        let q = rating_q();
        assert!(q.validate_answer(&Answer::Obfuscated(5.74)).is_ok());
        assert!(q.validate_answer(&Answer::Obfuscated(-0.3)).is_ok());
        assert!(q.validate_answer(&Answer::Obfuscated(f64::INFINITY)).is_err());
    }

    #[test]
    fn choice_validation() {
        let q = Question {
            id: QuestionId(1),
            text: "Pick one".into(),
            kind: QuestionKind::MultipleChoice {
                options: vec!["x".into(), "y".into(), "z".into()],
            },
            sensitive: false,
        };
        assert!(q.validate_answer(&Answer::Choice(2)).is_ok());
        assert!(matches!(
            q.validate_answer(&Answer::Choice(3)),
            Err(AnswerError::ChoiceOutOfRange { got: 3, len: 3 })
        ));
    }

    #[test]
    fn numeric_validation() {
        let q = Question {
            id: QuestionId(2),
            text: "Year of birth".into(),
            kind: QuestionKind::Numeric { min: 1900, max: 2013 },
            sensitive: true,
        };
        assert!(q.validate_answer(&Answer::Numeric(1985)).is_ok());
        assert!(q.validate_answer(&Answer::Numeric(1899)).is_err());
        assert!(q.validate_answer(&Answer::Obfuscated(1985.4)).is_ok());
    }

    #[test]
    fn kind_parameter_validation() {
        assert!(QuestionKind::Rating { min: 3, max: 3 }.validate().is_err());
        assert!(QuestionKind::MultipleChoice { options: vec!["only".into()] }
            .validate()
            .is_err());
        assert!(QuestionKind::Numeric { min: 5, max: 4 }.validate().is_err());
        assert!(QuestionKind::likert5().validate().is_ok());
    }

    #[test]
    fn answer_as_f64() {
        assert_eq!(Answer::Rating(4.0).as_f64(), Some(4.0));
        assert_eq!(Answer::Numeric(7).as_f64(), Some(7.0));
        assert_eq!(Answer::Obfuscated(2.5).as_f64(), Some(2.5));
        assert_eq!(Answer::Choice(1).as_f64(), None);
        assert_eq!(Answer::Text("hi".into()).as_f64(), None);
    }

    #[test]
    fn serde_round_trip() {
        let q = rating_q();
        let json = serde_json::to_string(&q).unwrap();
        let back: Question = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back);
    }
}
