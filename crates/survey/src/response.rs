//! Responses: one worker's answers to one survey, and collections thereof.

use crate::question::{Answer, AnswerError, QuestionId};
use crate::survey::{Survey, SurveyId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One worker's submission for one survey.
///
/// `worker` is whatever identifier the platform hands the requester. On an
/// AMT-style platform this is *stable across surveys* — the root cause of
/// the paper's linkage attack. On Loki it can be a per-survey pseudonym.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Worker identifier as visible to the requester.
    pub worker: String,
    /// Which survey this answers.
    pub survey: SurveyId,
    /// Answers keyed by question id (BTreeMap for deterministic iteration).
    pub answers: BTreeMap<QuestionId, Answer>,
}

impl Response {
    /// Creates an empty response for a worker/survey pair.
    pub fn new(worker: impl Into<String>, survey: SurveyId) -> Response {
        Response {
            worker: worker.into(),
            survey,
            answers: BTreeMap::new(),
        }
    }

    /// Records an answer (replacing any previous answer to that question).
    pub fn answer(&mut self, q: QuestionId, a: Answer) -> &mut Response {
        self.answers.insert(q, a);
        self
    }

    /// Looks up an answer.
    pub fn get(&self, q: QuestionId) -> Option<&Answer> {
        self.answers.get(&q)
    }

    /// Validates every answer against the survey definition and checks
    /// completeness (every question answered).
    pub fn validate(&self, survey: &Survey) -> Result<(), ResponseError> {
        if self.survey != survey.id {
            return Err(ResponseError::WrongSurvey {
                got: self.survey,
                want: survey.id,
            });
        }
        for q in &survey.questions {
            match self.answers.get(&q.id) {
                None => return Err(ResponseError::Missing(q.id)),
                Some(a) => q
                    .validate_answer(a)
                    .map_err(|e| ResponseError::Invalid(q.id, e))?,
            }
        }
        for qid in self.answers.keys() {
            if survey.question(*qid).is_none() {
                return Err(ResponseError::UnknownQuestion(*qid));
            }
        }
        Ok(())
    }

    /// Whether every answer in this response is obfuscated (used by the
    /// server to verify the at-source property on upload).
    pub fn fully_obfuscated(&self) -> bool {
        self.answers.values().all(Answer::is_obfuscated)
    }
}

/// Validation failures for a whole response.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseError {
    /// Response targets a different survey.
    WrongSurvey {
        /// The response's survey id.
        got: SurveyId,
        /// The expected survey id.
        want: SurveyId,
    },
    /// A question was left unanswered.
    Missing(QuestionId),
    /// An answer failed its question's validation.
    Invalid(QuestionId, AnswerError),
    /// An answer references a question not in the survey.
    UnknownQuestion(QuestionId),
}

impl std::fmt::Display for ResponseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResponseError::WrongSurvey { got, want } => {
                write!(f, "response for {got}, expected {want}")
            }
            ResponseError::Missing(q) => write!(f, "question {q} unanswered"),
            ResponseError::Invalid(q, e) => write!(f, "question {q}: {e}"),
            ResponseError::UnknownQuestion(q) => write!(f, "answer to unknown question {q}"),
        }
    }
}

impl std::error::Error for ResponseError {}

/// All collected responses for one survey.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResponseSet {
    responses: Vec<Response>,
}

impl ResponseSet {
    /// Creates an empty set.
    pub fn new() -> ResponseSet {
        ResponseSet::default()
    }

    /// Adds a response.
    pub fn push(&mut self, r: Response) {
        self.responses.push(r);
    }

    /// Number of responses.
    pub fn len(&self) -> usize {
        self.responses.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.responses.is_empty()
    }

    /// Iterates over responses in arrival order.
    pub fn iter(&self) -> impl Iterator<Item = &Response> {
        self.responses.iter()
    }

    /// The numeric answers to one question across all responses (skipping
    /// responses without a numeric answer to it).
    pub fn numeric_answers(&self, q: QuestionId) -> Vec<f64> {
        self.responses
            .iter()
            .filter_map(|r| r.get(q).and_then(Answer::as_f64))
            .collect()
    }

    /// Mean of the numeric answers to one question, if any exist.
    pub fn mean(&self, q: QuestionId) -> Option<f64> {
        let xs = self.numeric_answers(q);
        if xs.is_empty() {
            None
        } else {
            Some(xs.iter().sum::<f64>() / xs.len() as f64)
        }
    }

    /// Response of a particular worker, if present.
    pub fn by_worker(&self, worker: &str) -> Option<&Response> {
        self.responses.iter().find(|r| r.worker == worker)
    }

    /// Distinct worker ids, in first-appearance order.
    pub fn workers(&self) -> Vec<&str> {
        let mut seen = std::collections::HashSet::new();
        self.responses
            .iter()
            .filter(|r| seen.insert(r.worker.as_str()))
            .map(|r| r.worker.as_str())
            .collect()
    }

    /// Retains only responses accepted by the predicate (used by the
    /// random-responder filter).
    pub fn retain(&mut self, f: impl FnMut(&Response) -> bool) {
        self.responses.retain(f);
    }
}

impl FromIterator<Response> for ResponseSet {
    fn from_iter<T: IntoIterator<Item = Response>>(iter: T) -> ResponseSet {
        ResponseSet {
            responses: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::question::QuestionKind;
    use crate::survey::SurveyBuilder;

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        b.question("rate a", QuestionKind::likert5(), false);
        b.question("rate b", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    #[test]
    fn complete_valid_response_passes() {
        let s = survey();
        let mut r = Response::new("w1", s.id);
        r.answer(QuestionId(0), Answer::Rating(4.0));
        r.answer(QuestionId(1), Answer::Rating(2.0));
        assert!(r.validate(&s).is_ok());
    }

    #[test]
    fn missing_answer_detected() {
        let s = survey();
        let mut r = Response::new("w1", s.id);
        r.answer(QuestionId(0), Answer::Rating(4.0));
        assert_eq!(r.validate(&s), Err(ResponseError::Missing(QuestionId(1))));
    }

    #[test]
    fn wrong_survey_detected() {
        let s = survey();
        let r = Response::new("w1", SurveyId(99));
        assert!(matches!(
            r.validate(&s),
            Err(ResponseError::WrongSurvey { .. })
        ));
    }

    #[test]
    fn unknown_question_detected() {
        let s = survey();
        let mut r = Response::new("w1", s.id);
        r.answer(QuestionId(0), Answer::Rating(4.0));
        r.answer(QuestionId(1), Answer::Rating(2.0));
        r.answer(QuestionId(7), Answer::Rating(1.0));
        assert_eq!(
            r.validate(&s),
            Err(ResponseError::UnknownQuestion(QuestionId(7)))
        );
    }

    #[test]
    fn invalid_answer_reports_question() {
        let s = survey();
        let mut r = Response::new("w1", s.id);
        r.answer(QuestionId(0), Answer::Rating(9.0));
        r.answer(QuestionId(1), Answer::Rating(2.0));
        assert!(matches!(
            r.validate(&s),
            Err(ResponseError::Invalid(QuestionId(0), _))
        ));
    }

    #[test]
    fn fully_obfuscated_detection() {
        let mut r = Response::new("w", SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(3.3));
        assert!(r.fully_obfuscated());
        r.answer(QuestionId(1), Answer::Rating(2.0));
        assert!(!r.fully_obfuscated());
    }

    #[test]
    fn set_mean_and_answers() {
        let mut set = ResponseSet::new();
        for (w, v) in [("a", 2.0), ("b", 4.0), ("c", 3.0)] {
            let mut r = Response::new(w, SurveyId(1));
            r.answer(QuestionId(0), Answer::Rating(v));
            set.push(r);
        }
        assert_eq!(set.len(), 3);
        assert_eq!(set.numeric_answers(QuestionId(0)).len(), 3);
        assert!((set.mean(QuestionId(0)).unwrap() - 3.0).abs() < 1e-12);
        assert_eq!(set.mean(QuestionId(5)), None);
    }

    #[test]
    fn workers_deduplicated_in_order() {
        let mut set = ResponseSet::new();
        for w in ["b", "a", "b", "c"] {
            set.push(Response::new(w, SurveyId(1)));
        }
        assert_eq!(set.workers(), vec!["b", "a", "c"]);
    }

    #[test]
    fn retain_filters() {
        let mut set: ResponseSet = ["a", "b", "c"]
            .iter()
            .map(|w| Response::new(*w, SurveyId(1)))
            .collect();
        set.retain(|r| r.worker != "b");
        assert_eq!(set.len(), 2);
        assert!(set.by_worker("b").is_none());
        assert!(set.by_worker("a").is_some());
    }
}
