//! Cross-survey linkage by reported worker ID.
//!
//! The adversary's view: for each survey, a [`ResponseSet`] keyed by the
//! platform's reported worker IDs, plus the survey's question semantics
//! (which the adversary knows — they wrote the surveys). The linker
//! groups responses by reported ID and accumulates demographic fragments
//! and sensitive answers into a per-ID [`LinkedDossier`].
//!
//! Under AMT's stable IDs the dossier of a multi-survey worker fills up;
//! under per-survey pseudonyms every dossier contains a single survey's
//! fragment and the attack collapses (EXP-7).

use crate::stream::merge_fragment;
use loki_platform::spec::{QuestionSemantics, SurveySpec};
use loki_survey::demographics::PartialProfile;
use loki_survey::question::Answer;
use loki_survey::response::ResponseSet;
use loki_survey::SurveyId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Everything the adversary has accumulated about one reported worker ID.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LinkedDossier {
    /// Demographic fragments harvested so far.
    pub profile: PartialProfile,
    /// Surveys this ID appeared in.
    pub surveys: Vec<SurveyId>,
    /// Sensitive answers harvested, as (survey, question semantics label,
    /// numeric value) — e.g. smoking/cough levels from survey 4.
    pub sensitive: Vec<SensitiveDisclosure>,
}

/// A harvested sensitive answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitiveDisclosure {
    /// Survey it came from.
    pub survey: SurveyId,
    /// What the question was about.
    pub kind: SensitiveKind,
    /// The numeric answer value.
    pub value: f64,
}

/// Classes of sensitive information the paper's campaign harvests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SensitiveKind {
    /// Smoking frequency rating.
    Smoking,
    /// Coughing frequency rating.
    Cough,
}

impl LinkedDossier {
    /// The harvested smoking level, averaging duplicates (redundant
    /// questions ask it twice).
    pub fn smoking_level(&self) -> Option<f64> {
        self.mean_of(SensitiveKind::Smoking)
    }

    /// The harvested cough level.
    pub fn cough_level(&self) -> Option<f64> {
        self.mean_of(SensitiveKind::Cough)
    }

    fn mean_of(&self, kind: SensitiveKind) -> Option<f64> {
        let vals: Vec<f64> = self
            .sensitive
            .iter()
            .filter(|d| d.kind == kind)
            .map(|d| d.value)
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }
}

/// Accumulates dossiers across surveys.
#[derive(Debug, Clone, Default)]
pub struct Linker {
    dossiers: BTreeMap<String, LinkedDossier>,
}

impl Linker {
    /// Creates an empty linker.
    pub fn new() -> Linker {
        Linker::default()
    }

    /// Ingests one survey's worth of responses.
    pub fn ingest(&mut self, spec: &SurveySpec, responses: &ResponseSet) {
        for response in responses.iter() {
            let dossier = self.dossiers.entry(response.worker.clone()).or_default();
            if !dossier.surveys.contains(&spec.survey.id) {
                dossier.surveys.push(spec.survey.id);
            }
            let mut fragment = PartialProfile::new();
            for q in &spec.survey.questions {
                let Some(sem) = spec.semantics_of(q.id) else {
                    continue;
                };
                let Some(answer) = response.get(q.id) else {
                    continue;
                };
                match (sem, answer) {
                    (
                        QuestionSemantics::BirthDay
                        | QuestionSemantics::BirthMonth
                        | QuestionSemantics::BirthYear
                        | QuestionSemantics::Gender
                        | QuestionSemantics::ZipCode,
                        a,
                    ) => {
                        // Shared with the server's streaming sketch
                        // (crate::stream) so online and offline linkage
                        // read fragments identically.
                        merge_fragment(&mut fragment, sem, a);
                    }
                    (QuestionSemantics::SmokingLevel, a) => {
                        if let Some(v) = a.as_f64() {
                            dossier.sensitive.push(SensitiveDisclosure {
                                survey: spec.survey.id,
                                kind: SensitiveKind::Smoking,
                                value: v,
                            });
                        }
                    }
                    (QuestionSemantics::CoughLevel, a) => {
                        if let Some(v) = a.as_f64() {
                            dossier.sensitive.push(SensitiveDisclosure {
                                survey: spec.survey.id,
                                kind: SensitiveKind::Cough,
                                value: v,
                            });
                        }
                    }
                    _ => {}
                }
            }
            dossier.profile.merge(&fragment);
        }
    }

    /// All dossiers, keyed by reported worker ID.
    pub fn dossiers(&self) -> &BTreeMap<String, LinkedDossier> {
        &self.dossiers
    }

    /// Number of distinct reported IDs seen.
    pub fn unique_ids(&self) -> usize {
        self.dossiers.len()
    }

    /// Dossiers whose quasi-identifier is complete — the candidates for
    /// re-identification.
    pub fn complete_dossiers(&self) -> impl Iterator<Item = (&String, &LinkedDossier)> {
        self.dossiers
            .iter()
            .filter(|(_, d)| d.profile.quasi_identifier().is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_platform::behavior::BehaviorModel;
    use loki_platform::spec::paper_surveys;
    use loki_platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
    use loki_survey::demographics::{BirthDate, QuasiIdentifier};
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn worker(id: u64) -> WorkerProfile {
        WorkerProfile::new(
            WorkerId(id),
            QuasiIdentifier {
                birth: BirthDate::new(1970 + (id % 20) as u16, 1 + (id % 12) as u8, 1 + (id % 28) as u8)
                    .unwrap(),
                gender: if id.is_multiple_of(2) { Gender::Female } else { Gender::Male },
                zip: ZipCode::new(30_000 + id as u32).unwrap(),
            },
            HealthProfile {
                smoking_level: 5,
                cough_level: 4,
            },
            PrivacyAttitude {
                aware_of_profiling: false,
                would_participate_if_profiled: false,
            },
        )
    }

    /// Runs one worker through all five paper surveys under a stable ID.
    fn full_campaign_dossier(id: u64) -> LinkedDossier {
        let specs = paper_surveys();
        let w = worker(id);
        let model = BehaviorModel::Honest { opinion_noise: 0.3 };
        let mut rng = ChaCha20Rng::seed_from_u64(id);
        let mut linker = Linker::new();
        for spec in &specs {
            let mut set = ResponseSet::new();
            set.push(model.respond(&mut rng, &w, spec, "STABLE-ID"));
            linker.ingest(spec, &set);
        }
        linker.dossiers().get("STABLE-ID").cloned().unwrap()
    }

    #[test]
    fn stable_id_completes_quasi_identifier() {
        let d = full_campaign_dossier(6);
        let qi = d.profile.quasi_identifier().expect("QI completes");
        let w = worker(6);
        assert_eq!(qi, w.demographics);
        assert_eq!(d.surveys.len(), 5);
    }

    #[test]
    fn sensitive_answers_harvested() {
        let d = full_campaign_dossier(7);
        assert_eq!(d.smoking_level(), Some(5.0));
        assert_eq!(d.cough_level(), Some(4.0));
    }

    #[test]
    fn single_survey_does_not_complete_qi() {
        let specs = paper_surveys();
        let w = worker(8);
        let model = BehaviorModel::Honest { opinion_noise: 0.3 };
        let mut rng = ChaCha20Rng::seed_from_u64(8);
        for spec in &specs {
            let mut linker = Linker::new();
            let mut set = ResponseSet::new();
            set.push(model.respond(&mut rng, &w, spec, "ID"));
            linker.ingest(spec, &set);
            let d = &linker.dossiers()["ID"];
            assert!(
                d.profile.quasi_identifier().is_none(),
                "{} alone completed the QI",
                spec.survey.title
            );
        }
    }

    #[test]
    fn per_survey_pseudonyms_fragment_dossiers() {
        let specs = paper_surveys();
        let w = worker(9);
        let model = BehaviorModel::Honest { opinion_noise: 0.3 };
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let mut linker = Linker::new();
        for (i, spec) in specs.iter().enumerate() {
            let mut set = ResponseSet::new();
            set.push(model.respond(&mut rng, &w, spec, &format!("PSEUDO-{i}")));
            linker.ingest(spec, &set);
        }
        assert_eq!(linker.unique_ids(), 5);
        assert_eq!(linker.complete_dossiers().count(), 0);
    }

    #[test]
    fn lying_answers_poison_the_dossier() {
        // A privacy-protective worker's dossier completes but with wrong
        // values (checked against ground truth).
        let specs = paper_surveys();
        let w = worker(10);
        let model = BehaviorModel::PrivacyProtective;
        let mut rng = ChaCha20Rng::seed_from_u64(10);
        let mut linker = Linker::new();
        for spec in &specs {
            let mut set = ResponseSet::new();
            set.push(model.respond(&mut rng, &w, spec, "LIAR"));
            linker.ingest(spec, &set);
        }
        let d = &linker.dossiers()["LIAR"];
        if let Some(qi) = d.profile.quasi_identifier() {
            assert_ne!(qi, w.demographics, "fabricated QI matched truth — suspicious");
        }
        // (If the fabricated date was invalid, the QI is simply absent —
        // also fine for this test.)
    }

    #[test]
    fn invalid_fragments_ignored() {
        // Hand-craft a response with an out-of-range month: linker should
        // keep day but not complete the date.
        let specs = paper_surveys();
        let spec = &specs[0];
        let mut set = ResponseSet::new();
        let mut r = loki_survey::response::Response::new("X", spec.survey.id);
        for q in &spec.survey.questions {
            match spec.semantics_of(q.id).unwrap() {
                QuestionSemantics::BirthDay => {
                    r.answer(q.id, Answer::Numeric(12));
                }
                QuestionSemantics::BirthMonth => {
                    r.answer(q.id, Answer::Numeric(400)); // nonsense month
                }
                _ => {}
            }
        }
        set.push(r);
        let mut linker = Linker::new();
        linker.ingest(spec, &set);
        let d = &linker.dossiers()["X"];
        assert_eq!(d.profile.day, Some(12));
        // 400 fits in u8? No — u8::try_from(400) fails, so month is None.
        assert_eq!(d.profile.month, None);
    }
}
