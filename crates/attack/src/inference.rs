//! Sensitive-attribute inference for re-identified workers.
//!
//! §2: "we could infer the respiratory health (and likelihood of
//! tuberculosis) for 18 of these de-anonymized individuals from the fourth
//! survey using their unique ID, resulting in a serious breach of
//! privacy." The inference itself is mundane — read the smoking and
//! coughing answers the worker volunteered "anonymously" — which is the
//! paper's point: the breach comes from *linkage*, not from clever
//! modeling.

use crate::population::PersonId;
use crate::reident::Reidentification;
use serde::{Deserialize, Serialize};

/// Respiratory-health inference thresholds (on the 1–5 answer scale).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HealthInferenceRule {
    /// Smoking level at or above which the worker counts as a smoker.
    pub smoking_threshold: f64,
    /// Cough level at or above which coughing counts as frequent.
    pub cough_threshold: f64,
}

impl Default for HealthInferenceRule {
    fn default() -> Self {
        HealthInferenceRule {
            smoking_threshold: 4.0,
            cough_threshold: 4.0,
        }
    }
}

/// A named person whose respiratory health the adversary now knows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthExposure {
    /// The re-identified person.
    pub person: PersonId,
    /// The platform ID the answers arrived under.
    pub reported_id: String,
    /// Harvested smoking level.
    pub smoking_level: f64,
    /// Harvested cough level.
    pub cough_level: f64,
    /// The inference: elevated respiratory risk (the paper's "likelihood
    /// of tuberculosis").
    pub at_risk: bool,
}

impl HealthInferenceRule {
    /// Applies the rule to one re-identified dossier. Returns `None` when
    /// the dossier lacks health answers (the worker skipped survey 4).
    pub fn infer(&self, reid: &Reidentification) -> Option<HealthExposure> {
        let smoking = reid.dossier.smoking_level()?;
        let cough = reid.dossier.cough_level()?;
        Some(HealthExposure {
            person: reid.person,
            reported_id: reid.reported_id.clone(),
            smoking_level: smoking,
            cough_level: cough,
            at_risk: smoking >= self.smoking_threshold && cough >= self.cough_threshold,
        })
    }

    /// Applies the rule to every re-identified worker, returning all
    /// exposures (workers whose health is now known by name).
    pub fn infer_all(&self, reids: &[Reidentification]) -> Vec<HealthExposure> {
        reids.iter().filter_map(|r| self.infer(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linkage::{LinkedDossier, SensitiveDisclosure, SensitiveKind};
    use loki_survey::SurveyId;

    fn reid_with_health(smoking: Option<f64>, cough: Option<f64>) -> Reidentification {
        let mut dossier = LinkedDossier::default();
        if let Some(s) = smoking {
            dossier.sensitive.push(SensitiveDisclosure {
                survey: SurveyId(4),
                kind: SensitiveKind::Smoking,
                value: s,
            });
        }
        if let Some(c) = cough {
            dossier.sensitive.push(SensitiveDisclosure {
                survey: SurveyId(4),
                kind: SensitiveKind::Cough,
                value: c,
            });
        }
        Reidentification {
            reported_id: "W".into(),
            person: PersonId(1),
            dossier,
        }
    }

    #[test]
    fn smoker_with_cough_flagged() {
        let rule = HealthInferenceRule::default();
        let e = rule.infer(&reid_with_health(Some(5.0), Some(4.0))).unwrap();
        assert!(e.at_risk);
    }

    #[test]
    fn non_smoker_not_flagged() {
        let rule = HealthInferenceRule::default();
        let e = rule.infer(&reid_with_health(Some(1.0), Some(5.0))).unwrap();
        assert!(!e.at_risk);
    }

    #[test]
    fn missing_health_answers_yield_none() {
        let rule = HealthInferenceRule::default();
        assert!(rule.infer(&reid_with_health(None, None)).is_none());
        assert!(rule.infer(&reid_with_health(Some(5.0), None)).is_none());
    }

    #[test]
    fn infer_all_filters() {
        let rule = HealthInferenceRule::default();
        let reids = vec![
            reid_with_health(Some(5.0), Some(5.0)),
            reid_with_health(None, None),
            reid_with_health(Some(2.0), Some(2.0)),
        ];
        let exposures = rule.infer_all(&reids);
        assert_eq!(exposures.len(), 2);
        assert_eq!(exposures.iter().filter(|e| e.at_risk).count(), 1);
    }

    #[test]
    fn duplicate_smoking_answers_averaged() {
        // Survey 4 asks smoking twice (redundancy pair); the dossier
        // averages them.
        let mut reid = reid_with_health(Some(4.0), Some(4.0));
        reid.dossier.sensitive.push(SensitiveDisclosure {
            survey: SurveyId(4),
            kind: SensitiveKind::Smoking,
            value: 5.0,
        });
        assert_eq!(reid.dossier.smoking_level(), Some(4.5));
    }
}
