//! Incremental (streaming) adapter over the linkage machinery.
//!
//! [`crate::linkage::Linker`] is the *offline* adversary: it ingests whole
//! response sets after the fact. The live platform needs the same
//! quantity — how large is each respondent's anonymity set right now? —
//! maintained one submission at a time inside the server's apply step, so
//! the answer is available in O(cohorts) at any moment instead of an
//! O(history) rescan.
//!
//! [`AnonymitySketch`] is that maintained state: a per-subject
//! [`PartialProfile`] plus an exact cohort map over completed
//! quasi-identifiers (the Sweeney DoB/gender/ZIP triple, §2 of the
//! paper). Both the sketch and the offline `Linker` extract demographic
//! fragments through the same [`merge_fragment`] routine, so the
//! streaming k-anonymity distribution and an offline linkage run over the
//! same answers agree *by construction* — that equivalence is pinned by
//! tests at both layers.
//!
//! Identity hygiene: the sketch keys its internal maps by the opaque
//! subject string but everything it *exports* ([`KAnonymity`]) is bucket
//! counts only — no subject, no quasi-identifier values.

use crate::linkage::Linker;
use loki_platform::spec::QuestionSemantics;
use loki_survey::demographics::{Gender, PartialProfile, QuasiIdentifier, ZipCode};
use loki_survey::question::Answer;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};

/// Reads an answer as an integer for quasi-identifier extraction.
///
/// Raw `Numeric` answers pass through unchanged (the offline simulator's
/// view). `Obfuscated` answers — the only numeric form the server ever
/// stores, since raw uploads are refused at the door — are rounded to the
/// nearest integer, exactly as a linkage adversary would read them; a
/// zero-noise (level-None) obfuscated value round-trips losslessly.
fn answer_as_int(answer: &Answer) -> Option<i64> {
    match answer {
        Answer::Numeric(v) => Some(*v),
        Answer::Obfuscated(v) => {
            if !v.is_finite() {
                return None;
            }
            let rounded = v.round();
            // i64::MAX is not exactly representable as f64; stay inside
            // the exactly-convertible window.
            if rounded >= -(2f64.powi(62)) && rounded <= 2f64.powi(62) {
                Some(rounded as i64)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Folds one answered question into a demographic fragment, returning
/// `true` when the answer contributed a quasi-identifier field.
///
/// This is the single fragment-extraction routine shared by the offline
/// [`Linker`] and the streaming [`AnonymitySketch`]; out-of-range values
/// are dropped exactly as the linker always dropped them (`try_from` +
/// [`ZipCode::new`] validation).
pub fn merge_fragment(
    fragment: &mut PartialProfile,
    sem: &QuestionSemantics,
    answer: &Answer,
) -> bool {
    match sem {
        QuestionSemantics::BirthDay => {
            if let Some(day) = answer_as_int(answer).and_then(|v| u8::try_from(v).ok()) {
                fragment.day = Some(day);
                return true;
            }
            false
        }
        QuestionSemantics::BirthMonth => {
            if let Some(month) = answer_as_int(answer).and_then(|v| u8::try_from(v).ok()) {
                fragment.month = Some(month);
                return true;
            }
            false
        }
        QuestionSemantics::BirthYear => {
            if let Some(year) = answer_as_int(answer).and_then(|v| u16::try_from(v).ok()) {
                fragment.year = Some(year);
                return true;
            }
            false
        }
        QuestionSemantics::Gender => {
            if let Answer::Choice(c) = answer {
                let gender = match c {
                    0 => Some(Gender::Female),
                    1 => Some(Gender::Male),
                    _ => None,
                };
                if gender.is_some() {
                    fragment.gender = gender;
                    return true;
                }
            }
            false
        }
        QuestionSemantics::ZipCode => {
            if let Some(zip) = answer_as_int(answer)
                .and_then(|v| u32::try_from(v).ok())
                .and_then(ZipCode::new)
            {
                fragment.zip = Some(zip);
                return true;
            }
            false
        }
        _ => false,
    }
}

/// Identity-free summary of the anonymity-set structure: everything the
/// observatory publishes. Bucket counts only — no subject ids, no
/// quasi-identifier values.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct KAnonymity {
    /// Subjects whose quasi-identifier has completed (linkable at all).
    pub complete: u64,
    /// Distinct completed quasi-identifier values (anonymity cohorts).
    pub cohorts: u64,
    /// Cohort size `k` → number of subjects sitting in a cohort of
    /// exactly that size. `histogram[1]` is the re-identifiable count —
    /// the paper's "72 of 400" is this bucket.
    pub histogram: BTreeMap<u64, u64>,
    /// Subjects alone in their cohort (`k == 1`).
    pub at_risk: u64,
    /// Shannon entropy (bits) of the cohort-size distribution — the
    /// linkage-entropy trend the observatory charts; higher is safer.
    pub entropy_bits: f64,
}

impl KAnonymity {
    /// Builds the summary from an iterator of cohort sizes.
    pub fn from_cohort_sizes<I: IntoIterator<Item = u64>>(sizes: I) -> KAnonymity {
        let mut out = KAnonymity::default();
        for size in sizes {
            if size == 0 {
                continue;
            }
            out.cohorts += 1;
            out.complete += size;
            *out.histogram.entry(size).or_insert(0) += size;
            if size == 1 {
                out.at_risk += 1;
            }
        }
        if out.complete > 0 {
            let total = out.complete as f64;
            let mut entropy = 0.0_f64;
            for (&size, &members) in &out.histogram {
                // `members` subjects sit in cohorts of `size`; each such
                // cohort has probability mass size/total.
                let cohorts_of_size = members / size;
                let p = size as f64 / total;
                entropy -= cohorts_of_size as f64 * p * p.log2();
            }
            out.entropy_bits = entropy.max(0.0);
        }
        out
    }

    /// The same summary computed from an offline linkage run — the
    /// ground truth the streaming sketch is tested against.
    pub fn of_linker(linker: &Linker) -> KAnonymity {
        let mut cohorts: HashMap<QuasiIdentifier, u64> = HashMap::new();
        for (_, dossier) in linker.complete_dossiers() {
            if let Some(qi) = dossier.profile.quasi_identifier() {
                *cohorts.entry(qi).or_insert(0) += 1;
            }
        }
        KAnonymity::from_cohort_sizes(cohorts.into_values())
    }

    /// Fraction of linkable subjects who are unique in their cohort —
    /// the re-identification-risk fraction (0 when nobody is linkable).
    pub fn at_risk_ratio(&self) -> f64 {
        if self.complete == 0 {
            0.0
        } else {
            self.at_risk as f64 / self.complete as f64
        }
    }
}

/// Exact streaming anonymity-set sketch over the Sweeney triple.
///
/// `observe` folds one submission's demographic fragment into the
/// subject's profile and moves the subject between quasi-identifier
/// cohorts when the completed value changes; both operations are O(1)
/// map updates, so the apply-path cost is constant per submission.
#[derive(Debug, Clone, Default)]
pub struct AnonymitySketch {
    profiles: HashMap<String, PartialProfile>,
    cohorts: HashMap<QuasiIdentifier, u64>,
}

impl AnonymitySketch {
    /// Creates an empty sketch.
    pub fn new() -> AnonymitySketch {
        AnonymitySketch::default()
    }

    /// Folds one submission's fragment into `subject`'s profile,
    /// re-bucketing the cohort map if the completed quasi-identifier
    /// changed (later answers win, matching [`PartialProfile::merge`]).
    pub fn observe(&mut self, subject: &str, fragment: &PartialProfile) {
        if fragment.disclosed_count() == 0 {
            return;
        }
        let profile = self
            .profiles
            .entry(subject.to_owned())
            .or_insert_with(PartialProfile::new);
        let before = profile.quasi_identifier();
        profile.merge(fragment);
        let after = profile.quasi_identifier();
        if before == after {
            return;
        }
        if let Some(qi) = before {
            if let Some(count) = self.cohorts.get_mut(&qi) {
                *count -= 1;
                if *count == 0 {
                    self.cohorts.remove(&qi);
                }
            }
        }
        if let Some(qi) = after {
            *self.cohorts.entry(qi).or_insert(0) += 1;
        }
    }

    /// Number of subjects that have disclosed at least one fragment.
    pub fn subjects(&self) -> u64 {
        self.profiles.len() as u64
    }

    /// Adds this sketch's cohort counts into a cross-shard accumulator.
    /// Subjects are routed to exactly one sketch shard, so summing per
    /// quasi-identifier is the exact global cohort map.
    pub fn merge_cohorts_into(&self, acc: &mut HashMap<QuasiIdentifier, u64>) {
        for (qi, count) in &self.cohorts {
            *acc.entry(*qi).or_insert(0) += count;
        }
    }

    /// The k-anonymity summary of this sketch alone.
    pub fn k_anonymity(&self) -> KAnonymity {
        KAnonymity::from_cohort_sizes(self.cohorts.values().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_platform::behavior::BehaviorModel;
    use loki_platform::spec::paper_surveys;
    use loki_platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
    use loki_survey::demographics::BirthDate;
    use loki_survey::response::ResponseSet;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn worker(id: u64, zip: u32) -> WorkerProfile {
        WorkerProfile::new(
            WorkerId(id),
            QuasiIdentifier {
                birth: BirthDate::new(1970 + (id % 20) as u16, 1 + (id % 12) as u8, 1 + (id % 28) as u8)
                    .expect("valid synthetic date"),
                gender: if id % 2 == 0 { Gender::Female } else { Gender::Male },
                zip: ZipCode::new(zip).expect("valid zip"),
            },
            HealthProfile {
                smoking_level: 3,
                cough_level: 2,
            },
            PrivacyAttitude {
                aware_of_profiling: false,
                would_participate_if_profiled: false,
            },
        )
    }

    fn fragment_of(sem: QuestionSemantics, answer: &Answer) -> PartialProfile {
        let mut f = PartialProfile::new();
        merge_fragment(&mut f, &sem, answer);
        f
    }

    #[test]
    fn obfuscated_answers_round_to_fragments() {
        // The server stores QI answers only in obfuscated form; a
        // zero-noise value must extract identically to the raw integer.
        let raw = fragment_of(QuestionSemantics::BirthDay, &Answer::Numeric(14));
        let obf = fragment_of(QuestionSemantics::BirthDay, &Answer::Obfuscated(14.0));
        assert_eq!(raw.day, Some(14));
        assert_eq!(obf.day, raw.day);
        // Noisy values round like an adversary would read them.
        let noisy = fragment_of(QuestionSemantics::BirthDay, &Answer::Obfuscated(13.7));
        assert_eq!(noisy.day, Some(14));
        // Garbage is dropped, not panicked on.
        assert_eq!(
            fragment_of(QuestionSemantics::BirthDay, &Answer::Obfuscated(f64::NAN)).day,
            None
        );
        assert_eq!(
            fragment_of(QuestionSemantics::BirthDay, &Answer::Obfuscated(1e300)).day,
            None
        );
        assert_eq!(
            fragment_of(QuestionSemantics::ZipCode, &Answer::Obfuscated(123_456.0)).zip,
            None,
            "out-of-range zips are rejected by ZipCode::new"
        );
    }

    #[test]
    fn gender_comes_from_choice_only() {
        let f = fragment_of(QuestionSemantics::Gender, &Answer::Choice(1));
        assert_eq!(f.gender, Some(Gender::Male));
        let f = fragment_of(QuestionSemantics::Gender, &Answer::Choice(7));
        assert_eq!(f.gender, None);
        let f = fragment_of(QuestionSemantics::Gender, &Answer::Obfuscated(1.0));
        assert_eq!(f.gender, None);
    }

    #[test]
    fn sketch_counts_cohorts_exactly() {
        let mut sketch = AnonymitySketch::new();
        // Two subjects share a QI, one is unique.
        for (subject, id, zip) in [("a", 2, 30_001), ("b", 2, 30_001), ("c", 3, 30_002)] {
            let w = worker(id, zip);
            let mut f = PartialProfile::new();
            f.day = Some(w.demographics.birth.day);
            f.month = Some(w.demographics.birth.month);
            f.year = Some(w.demographics.birth.year);
            f.gender = Some(w.demographics.gender);
            f.zip = Some(w.demographics.zip);
            sketch.observe(subject, &f);
        }
        let k = sketch.k_anonymity();
        assert_eq!(k.complete, 3);
        assert_eq!(k.cohorts, 2);
        assert_eq!(k.at_risk, 1);
        assert_eq!(k.histogram.get(&2), Some(&2));
        assert_eq!(k.histogram.get(&1), Some(&1));
        assert!((k.at_risk_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_disclosure_never_enters_a_cohort() {
        let mut sketch = AnonymitySketch::new();
        let mut f = PartialProfile::new();
        f.day = Some(10);
        f.month = Some(4);
        sketch.observe("a", &f);
        let k = sketch.k_anonymity();
        assert_eq!(k.complete, 0);
        assert_eq!(sketch.subjects(), 1);
        assert_eq!(k.at_risk_ratio(), 0.0, "no linkable subjects, no risk");
    }

    #[test]
    fn rebucketing_on_later_answers() {
        // A subject completes a QI, then revises their ZIP: the cohort
        // map must move them, never double-count.
        let mut sketch = AnonymitySketch::new();
        let w = worker(4, 30_004);
        let mut f = PartialProfile::new();
        f.day = Some(w.demographics.birth.day);
        f.month = Some(w.demographics.birth.month);
        f.year = Some(w.demographics.birth.year);
        f.gender = Some(w.demographics.gender);
        f.zip = Some(w.demographics.zip);
        sketch.observe("mover", &f);
        assert_eq!(sketch.k_anonymity().complete, 1);
        let mut revision = PartialProfile::new();
        revision.zip = ZipCode::new(40_000);
        sketch.observe("mover", &revision);
        let k = sketch.k_anonymity();
        assert_eq!(k.complete, 1, "moved, not duplicated");
        assert_eq!(k.cohorts, 1);
    }

    #[test]
    fn streaming_sketch_matches_offline_linker() {
        // Run the paper's five-survey campaign for 40 workers through
        // BOTH paths: the offline Linker over whole response sets, and
        // the sketch one response at a time. The k-anonymity summaries
        // must be identical (same extraction routine by construction).
        let specs = paper_surveys();
        let model = BehaviorModel::Honest { opinion_noise: 0.3 };
        let mut linker = Linker::new();
        let mut sketch = AnonymitySketch::new();
        for id in 0..40u64 {
            // Collisions on purpose: zip spread smaller than worker count.
            let w = worker(id, 30_000 + (id % 25) as u32);
            let mut rng = ChaCha20Rng::seed_from_u64(id);
            let subject = format!("w{id}");
            for spec in &specs {
                let response = model.respond(&mut rng, &w, spec, &subject);
                // Offline path.
                let mut set = ResponseSet::new();
                set.push(response.clone());
                linker.ingest(spec, &set);
                // Streaming path: one fragment per response, exactly how
                // the server's apply step feeds the observatory.
                let mut fragment = PartialProfile::new();
                for q in &spec.survey.questions {
                    let (Some(sem), Some(answer)) = (spec.semantics_of(q.id), response.get(q.id))
                    else {
                        continue;
                    };
                    merge_fragment(&mut fragment, sem, answer);
                }
                sketch.observe(&subject, &fragment);
            }
        }
        let offline = KAnonymity::of_linker(&linker);
        let streamed = sketch.k_anonymity();
        assert!(offline.complete > 0, "campaign must complete some QIs");
        assert_eq!(streamed, offline);
    }

    #[test]
    fn merged_shard_cohorts_equal_single_sketch() {
        // Subjects partitioned across sketch shards: merging cohort maps
        // must reproduce the unsharded summary exactly.
        let mut single = AnonymitySketch::new();
        let mut shards = vec![AnonymitySketch::new(), AnonymitySketch::new(), AnonymitySketch::new()];
        for id in 0..30u64 {
            let w = worker(id, 30_000 + (id % 7) as u32);
            let mut f = PartialProfile::new();
            f.day = Some(w.demographics.birth.day);
            f.month = Some(w.demographics.birth.month);
            f.year = Some(w.demographics.birth.year);
            f.gender = Some(w.demographics.gender);
            f.zip = Some(w.demographics.zip);
            let subject = format!("s{id}");
            single.observe(&subject, &f);
            shards[(id % 3) as usize].observe(&subject, &f);
        }
        let mut merged = HashMap::new();
        for shard in &shards {
            shard.merge_cohorts_into(&mut merged);
        }
        let combined = KAnonymity::from_cohort_sizes(merged.into_values());
        assert_eq!(combined, single.k_anonymity());
    }

    #[test]
    fn entropy_tracks_uniformity() {
        // 4 subjects in one cohort: zero entropy. 4 singletons: 2 bits.
        let one_cohort = KAnonymity::from_cohort_sizes([4]);
        assert!(one_cohort.entropy_bits.abs() < 1e-12);
        let singletons = KAnonymity::from_cohort_sizes([1, 1, 1, 1]);
        assert!((singletons.entropy_bits - 2.0).abs() < 1e-12);
        assert_eq!(singletons.at_risk, 4);
        assert!((singletons.at_risk_ratio() - 1.0).abs() < 1e-12);
    }
}
