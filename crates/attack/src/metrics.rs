//! Attack-quality metrics shared by the experiments.

use serde::{Deserialize, Serialize};

/// Precision/recall of a binary classifier (used to score the
//  random-responder filter in EXP-8 and the attack's victim selection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecisionRecall {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl PrecisionRecall {
    /// Builds the confusion matrix from parallel prediction/truth slices.
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn from_predictions(predicted: &[bool], truth: &[bool]) -> PrecisionRecall {
        assert_eq!(predicted.len(), truth.len(), "slice length mismatch");
        let mut m = PrecisionRecall {
            tp: 0,
            fp: 0,
            fn_: 0,
            tn: 0,
        };
        for (&p, &t) in predicted.iter().zip(truth) {
            match (p, t) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, true) => m.fn_ += 1,
                (false, false) => m.tn += 1,
            }
        }
        m
    }

    /// Precision = TP / (TP + FP); 1.0 when nothing was predicted positive
    /// (vacuously precise).
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when there were no positives to find.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            1.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 score (harmonic mean of precision and recall; 0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }
}

/// Re-identification rate: unique matches over observed IDs.
pub fn reidentification_rate(unique_matches: usize, total_ids: usize) -> f64 {
    if total_ids == 0 {
        0.0
    } else {
        unique_matches as f64 / total_ids as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn confusion_matrix_from_predictions() {
        let predicted = [true, true, false, false, true];
        let truth = [true, false, true, false, true];
        let m = PrecisionRecall::from_predictions(&predicted, &truth);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn), (2, 1, 1, 1));
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let none = PrecisionRecall::from_predictions(&[false, false], &[false, false]);
        assert_eq!(none.precision(), 1.0);
        assert_eq!(none.recall(), 1.0);

        let all_wrong = PrecisionRecall::from_predictions(&[true], &[false]);
        assert_eq!(all_wrong.precision(), 0.0);
        assert_eq!(all_wrong.f1(), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_rejected() {
        let _ = PrecisionRecall::from_predictions(&[true], &[true, false]);
    }

    #[test]
    fn reident_rate() {
        assert_eq!(reidentification_rate(72, 400), 0.18);
        assert_eq!(reidentification_rate(0, 0), 0.0);
    }
}
