//! # loki-attack — the de-anonymization engine of §2
//!
//! Reproduces the paper's attack pipeline end to end:
//!
//! 1. [`population`] — a synthetic US-like population whose uniqueness
//!    under the (date of birth, gender, ZIP) quasi-identifier is
//!    calibrated to the 63–87% band reported by Sweeney (2000) and
//!    Golle (2006), the works the paper cites for re-identifiability;
//! 2. [`registry`] — an external identified dataset (voter-roll stand-in)
//!    the adversary joins against;
//! 3. [`linkage`] — accumulation of demographic fragments across surveys
//!    keyed by the platform's stable worker ID;
//! 4. [`reident`] — matching accumulated quasi-identifiers against the
//!    registry, with k-anonymity accounting;
//! 5. [`inference`] — reading sensitive answers (smoking/coughing →
//!    respiratory risk) for re-identified workers.
//!
//! The adversary in this crate sees **only what a real requester sees**:
//! reported worker IDs and submitted answers. Worker ground truth is never
//! consulted except to *score* the attack afterwards.

//! # Example
//!
//! ```
//! use loki_attack::population::{Population, PopulationConfig};
//! use loki_attack::registry::Registry;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
//! let pop = Population::synthesize(
//!     PopulationConfig { size: 50_000, zip_count: 5, ..PopulationConfig::default() },
//!     &mut rng,
//! );
//! // Most people are unique under (DOB, gender, ZIP) — the attack's fuel.
//! assert!(pop.uniqueness_rate() > 0.5);
//! let registry = Registry::from_population(&pop, 1.0);
//! assert_eq!(registry.len(), pop.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod inference;
pub mod linkage;
pub mod metrics;
pub mod population;
pub mod registry;
pub mod reident;
pub mod stream;

pub use linkage::{LinkedDossier, Linker};
pub use stream::{AnonymitySketch, KAnonymity};
pub use population::{Person, PersonId, Population, PopulationConfig};
pub use registry::Registry;
pub use reident::{MatchOutcome, Reidentifier};
