//! The external identified dataset the adversary joins against.
//!
//! Sweeney's original attack joined an "anonymized" medical dataset with
//! the Cambridge, MA voter roll. The registry here plays that role: a
//! public list of (name, date of birth, gender, ZIP) records. It is built
//! from the synthetic population — in the real world a voter roll *is*
//! (a projection of) the population.

use crate::population::{Person, PersonId, Population};
use loki_survey::demographics::{PartialProfile, QuasiIdentifier, ZipCode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// An index over identified records by quasi-identifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Registry {
    by_qi: HashMap<QuasiIdentifier, Vec<PersonId>>,
    names: HashMap<PersonId, String>,
    /// All covered records, for partial-identifier scans.
    records: Vec<(PersonId, QuasiIdentifier)>,
    /// Indices into `records` by ZIP — the usual first filter (ZIP is the
    /// most selective commonly-disclosed attribute).
    by_zip: HashMap<ZipCode, Vec<u32>>,
}

impl Registry {
    /// Builds a registry covering a fraction of the population (voter
    /// rolls never cover everyone; `coverage = 1.0` covers all, and the
    /// covered subset is the deterministic prefix — callers who need a
    /// random subset can shuffle the population first).
    ///
    /// # Panics
    /// Panics if `coverage` is outside `[0, 1]`.
    pub fn from_population(pop: &Population, coverage: f64) -> Registry {
        assert!(
            (0.0..=1.0).contains(&coverage),
            "coverage must be in [0,1], got {coverage}"
        );
        let n = (pop.len() as f64 * coverage).round() as usize;
        let mut by_qi: HashMap<QuasiIdentifier, Vec<PersonId>> = HashMap::new();
        let mut names = HashMap::new();
        let mut records = Vec::with_capacity(n);
        let mut by_zip: HashMap<ZipCode, Vec<u32>> = HashMap::new();
        for p in &pop.people()[..n] {
            by_qi.entry(p.demographics).or_default().push(p.id);
            names.insert(p.id, p.name.clone());
            by_zip
                .entry(p.demographics.zip)
                .or_default()
                .push(records.len() as u32);
            records.push((p.id, p.demographics));
        }
        Registry {
            by_qi,
            names,
            records,
            by_zip,
        }
    }

    /// People consistent with every *disclosed* fragment of a partial
    /// profile — the attacker's candidate set before the profile
    /// completes. An empty profile matches everyone.
    ///
    /// Uses the ZIP index when ZIP is disclosed (the common case after
    /// survey 3); otherwise scans all covered records.
    pub fn candidates(&self, profile: &PartialProfile) -> Vec<PersonId> {
        let matches = |qi: &QuasiIdentifier| -> bool {
            profile.day.is_none_or(|d| qi.birth.day == d)
                && profile.month.is_none_or(|m| qi.birth.month == m)
                && profile.year.is_none_or(|y| qi.birth.year == y)
                && profile.gender.is_none_or(|g| qi.gender == g)
                && profile.zip.is_none_or(|z| qi.zip == z)
        };
        match profile.zip {
            Some(zip) => self
                .by_zip
                .get(&zip)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(|&i| &self.records[i as usize])
                .filter(|(_, qi)| matches(qi))
                .map(|(id, _)| *id)
                .collect(),
            None => self
                .records
                .iter()
                .filter(|(_, qi)| matches(qi))
                .map(|(id, _)| *id)
                .collect(),
        }
    }

    /// Size of the candidate set without materializing it.
    pub fn candidate_count(&self, profile: &PartialProfile) -> usize {
        let matches = |qi: &QuasiIdentifier| -> bool {
            profile.day.is_none_or(|d| qi.birth.day == d)
                && profile.month.is_none_or(|m| qi.birth.month == m)
                && profile.year.is_none_or(|y| qi.birth.year == y)
                && profile.gender.is_none_or(|g| qi.gender == g)
                && profile.zip.is_none_or(|z| qi.zip == z)
        };
        match profile.zip {
            Some(zip) => self
                .by_zip
                .get(&zip)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .filter(|&&i| matches(&self.records[i as usize].1))
                .count(),
            None => self.records.iter().filter(|(_, qi)| matches(qi)).count(),
        }
    }

    /// Number of registered people.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Everyone registered under a quasi-identifier (the k-anonymity
    /// equivalence class).
    pub fn lookup(&self, qi: &QuasiIdentifier) -> &[PersonId] {
        self.by_qi.get(qi).map_or(&[], Vec::as_slice)
    }

    /// The registered name of a person.
    pub fn name_of(&self, id: PersonId) -> Option<&str> {
        self.names.get(&id).map(String::as_str)
    }

    /// Convenience for tests and reports: a registered person record.
    pub fn record(&self, id: PersonId, pop: &Population) -> Option<Person> {
        self.names.get(&id)?;
        pop.person(id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::PopulationConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn pop() -> Population {
        Population::synthesize(
            PopulationConfig {
                size: 20_000,
                zip_count: 4,
                ..PopulationConfig::default()
            },
            &mut ChaCha20Rng::seed_from_u64(11),
        )
    }

    #[test]
    fn full_coverage_indexes_everyone() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        assert_eq!(r.len(), p.len());
        for person in p.people().iter().take(50) {
            let class = r.lookup(&person.demographics);
            assert!(class.contains(&person.id));
            assert_eq!(r.name_of(person.id), Some(person.name.as_str()));
        }
    }

    #[test]
    fn partial_coverage_counts() {
        let p = pop();
        let r = Registry::from_population(&p, 0.5);
        assert_eq!(r.len(), p.len() / 2);
    }

    #[test]
    fn zero_coverage_is_empty() {
        let p = pop();
        let r = Registry::from_population(&p, 0.0);
        assert!(r.is_empty());
        assert_eq!(r.lookup(&p.people()[0].demographics), &[]);
    }

    #[test]
    fn unknown_qi_yields_empty_class() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        use loki_survey::demographics::{BirthDate, Gender, ZipCode};
        let ghost = QuasiIdentifier {
            birth: BirthDate::new(1901, 1, 1).unwrap(),
            gender: Gender::Female,
            zip: ZipCode::new(99_999).unwrap(),
        };
        assert!(r.lookup(&ghost).is_empty());
    }

    #[test]
    #[should_panic(expected = "coverage must be in [0,1]")]
    fn bad_coverage_rejected() {
        let p = pop();
        let _ = Registry::from_population(&p, 1.5);
    }

    #[test]
    fn empty_profile_matches_everyone() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        assert_eq!(r.candidate_count(&PartialProfile::new()), p.len());
    }

    #[test]
    fn candidates_shrink_as_fragments_accumulate() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let person = &p.people()[0];
        let qi = person.demographics;

        let mut profile = PartialProfile::new();
        let all = r.candidate_count(&profile);

        profile.day = Some(qi.birth.day);
        profile.month = Some(qi.birth.month);
        let after_s1 = r.candidate_count(&profile);

        profile.gender = Some(qi.gender);
        profile.year = Some(qi.birth.year);
        let after_s2 = r.candidate_count(&profile);

        profile.zip = Some(qi.zip);
        let after_s3 = r.candidate_count(&profile);

        assert!(all > after_s1, "{all} !> {after_s1}");
        assert!(after_s1 > after_s2, "{after_s1} !> {after_s2}");
        assert!(after_s2 >= after_s3);
        assert!(after_s3 >= 1, "the true person must remain a candidate");
        // Full profile: candidates == the exact-QI class.
        assert_eq!(after_s3, r.lookup(&qi).len());
    }

    #[test]
    fn candidates_and_count_agree() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let person = &p.people()[7];
        let profile = PartialProfile {
            day: Some(person.demographics.birth.day),
            month: None,
            year: None,
            gender: Some(person.demographics.gender),
            zip: Some(person.demographics.zip),
        };
        let list = r.candidates(&profile);
        assert_eq!(list.len(), r.candidate_count(&profile));
        assert!(list.contains(&person.id));
    }

    #[test]
    fn zip_only_profile_uses_index() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let zip = p.people()[0].demographics.zip;
        let profile = PartialProfile {
            zip: Some(zip),
            ..PartialProfile::new()
        };
        let count = r.candidate_count(&profile);
        let brute = p
            .people()
            .iter()
            .filter(|q| q.demographics.zip == zip)
            .count();
        assert_eq!(count, brute);
    }
}
