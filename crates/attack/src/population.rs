//! Synthetic population with calibrated quasi-identifier uniqueness.
//!
//! The attack's yield is governed by how identifying the (date of birth,
//! gender, ZIP) triple is. Sweeney (2000) estimated 87% of the US
//! population unique under it; Golle (2006), with better data, 63%. Both
//! are driven by the same arithmetic: a ZCTA holds on the order of 10⁴
//! people spread over ~45,000 (birthdate × gender) cells, so most cells
//! hold at most one person.
//!
//! We reproduce that arithmetic directly: ZIP populations are drawn from
//! a heavy-tailed (log-normal-like) size distribution around a
//! configurable mean, birthdates are uniform over the adult age range,
//! and gender is a fair coin. [`Population::uniqueness_rate`] lets every
//! experiment verify the calibration before running the attack.

use loki_platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
use loki_platform::BehaviorModel;
use loki_survey::demographics::{BirthDate, Gender, QuasiIdentifier, ZipCode};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a person in the synthetic world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct PersonId(pub u64);

/// One member of the synthetic population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Person {
    /// Identity.
    pub id: PersonId,
    /// A name-like label (what re-identification recovers).
    pub name: String,
    /// True demographics.
    pub demographics: QuasiIdentifier,
}

/// Knobs for population synthesis.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// Number of people.
    pub size: usize,
    /// Number of distinct ZIP codes people live in.
    pub zip_count: usize,
    /// Spread of ZIP sizes: 0 = all equal, larger = heavier tail. The
    /// multiplier for a ZIP is `exp(spread · z)` with `z` standard normal.
    pub zip_size_spread: f64,
    /// Youngest birth year (inclusive).
    pub birth_year_min: u16,
    /// Oldest birth year (inclusive).
    pub birth_year_max: u16,
    /// Fraction of smokers (drives survey 4's ground truth).
    pub smoking_rate: f64,
    /// Fraction of workers aware they can be profiled (drives survey 5).
    pub awareness_rate: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        // Mean ZIP size = size / zip_count; defaults chosen so the
        // uniqueness rate lands in the Sweeney–Golle 63–87% band (the
        // calibration test pins this).
        PopulationConfig {
            size: 500_000,
            zip_count: 50,
            zip_size_spread: 0.6,
            birth_year_min: 1940,
            birth_year_max: 1995,
            smoking_rate: 0.25,
            awareness_rate: 0.25,
        }
    }
}

/// The synthetic world: people with demographics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Population {
    people: Vec<Person>,
    config: PopulationConfig,
}

impl Population {
    /// Synthesizes a population.
    ///
    /// # Panics
    /// Panics if `config.size == 0`, `config.zip_count == 0` or the birth
    /// year range is inverted.
    pub fn synthesize<R: Rng + ?Sized>(config: PopulationConfig, rng: &mut R) -> Population {
        assert!(config.size > 0, "population must be non-empty");
        assert!(config.zip_count > 0, "need at least one ZIP");
        assert!(
            config.birth_year_min <= config.birth_year_max,
            "birth year range inverted"
        );

        // Heavy-tailed ZIP weights: w_i = exp(spread * z_i).
        let weights: Vec<f64> = (0..config.zip_count)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let v: f64 = rng.gen_range(0.0..1.0);
                // Box–Muller-lite normal from two uniforms.
                let z = (-2.0 * u.max(1e-12).ln()).sqrt()
                    * (2.0 * std::f64::consts::PI * v).cos();
                (config.zip_size_spread * z).exp()
            })
            .collect();
        let total_w: f64 = weights.iter().sum();
        // Distinct ZIP codes spread across the 5-digit space.
        let zip_codes: Vec<ZipCode> = (0..config.zip_count)
            .map(|i| ZipCode::new((10_000 + i * 7) as u32 % 100_000).expect("valid zip"))
            .collect();

        // Cumulative distribution for weighted ZIP assignment.
        let mut cumulative = Vec::with_capacity(config.zip_count);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total_w;
            cumulative.push(acc);
        }

        let year_span = u32::from(config.birth_year_max - config.birth_year_min) + 1;
        let people = (0..config.size)
            .map(|i| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let zi = cumulative.partition_point(|&c| c < u).min(config.zip_count - 1);
                let year = config.birth_year_min + rng.gen_range(0..year_span) as u16;
                let doy = rng.gen_range(0..365u16);
                let birth = BirthDate::from_day_of_year(year, doy);
                let gender = if rng.gen_bool(0.5) {
                    Gender::Female
                } else {
                    Gender::Male
                };
                Person {
                    id: PersonId(i as u64),
                    name: format!("person-{i:06}"),
                    demographics: QuasiIdentifier {
                        birth,
                        gender,
                        zip: zip_codes[zi],
                    },
                }
            })
            .collect();

        Population { people, config }
    }

    /// The people.
    pub fn people(&self) -> &[Person] {
        &self.people
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.people.len()
    }

    /// Whether the population is empty (never true for a synthesized one).
    pub fn is_empty(&self) -> bool {
        self.people.is_empty()
    }

    /// The configuration used to synthesize.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Fraction of people unique under the full quasi-identifier — the
    /// number to compare against Sweeney's 87% / Golle's 63%.
    pub fn uniqueness_rate(&self) -> f64 {
        let mut counts: HashMap<QuasiIdentifier, u32> = HashMap::with_capacity(self.people.len());
        for p in &self.people {
            *counts.entry(p.demographics).or_insert(0) += 1;
        }
        let unique = self
            .people
            .iter()
            .filter(|p| counts[&p.demographics] == 1)
            .count();
        unique as f64 / self.people.len() as f64
    }

    /// Histogram of k-anonymity class sizes: `result[k]` = number of
    /// *people* in an equivalence class of exactly `k` (index 0 unused).
    pub fn k_anonymity_histogram(&self, max_k: usize) -> Vec<usize> {
        let mut counts: HashMap<QuasiIdentifier, u32> = HashMap::with_capacity(self.people.len());
        for p in &self.people {
            *counts.entry(p.demographics).or_insert(0) += 1;
        }
        let mut hist = vec![0usize; max_k + 1];
        for p in &self.people {
            let k = counts[&p.demographics] as usize;
            if k <= max_k {
                hist[k] += 1;
            }
        }
        hist
    }

    /// Samples `n` distinct people as marketplace workers, drawing their
    /// non-demographic ground truth (health, attitude) from the config's
    /// prevalence rates and attaching a behaviour model chosen by `pick`.
    ///
    /// # Panics
    /// Panics if `n` exceeds the population size.
    pub fn sample_workers<R: Rng + ?Sized>(
        &self,
        n: usize,
        rng: &mut R,
        mut pick: impl FnMut(&mut R, usize) -> BehaviorModel,
    ) -> Vec<(WorkerProfile, BehaviorModel)> {
        assert!(
            n <= self.people.len(),
            "cannot sample {n} workers from {} people",
            self.people.len()
        );
        let mut chosen: Vec<&Person> = self.people.iter().collect();
        chosen.shuffle(rng);
        chosen
            .into_iter()
            .take(n)
            .enumerate()
            .map(|(i, p)| {
                let smoker = rng.gen_bool(self.config.smoking_rate.clamp(0.0, 1.0));
                let smoking_level = if smoker { rng.gen_range(4..=5) } else { rng.gen_range(1..=2) };
                // Coughing correlates with smoking (that correlation is
                // exactly what makes survey 4's inference informative).
                let cough_level = if smoker {
                    rng.gen_range(3..=5)
                } else {
                    rng.gen_range(1..=3)
                };
                let aware = rng.gen_bool(self.config.awareness_rate.clamp(0.0, 1.0));
                let health = HealthProfile {
                    smoking_level,
                    cough_level,
                };
                let attitude = PrivacyAttitude {
                    aware_of_profiling: aware,
                    // The paper found attitude tracks awareness: those who
                    // knew mostly still participate; those who didn't know
                    // mostly would not.
                    would_participate_if_profiled: aware,
                };
                let profile = WorkerProfile::new(WorkerId(p.id.0), p.demographics, health, attitude);
                let behavior = pick(rng, i);
                (profile, behavior)
            })
            .collect()
    }

    /// Looks up a person by id (worker ids reuse person ids).
    pub fn person(&self, id: PersonId) -> Option<&Person> {
        self.people.get(id.0 as usize).filter(|p| p.id == id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn small_config() -> PopulationConfig {
        PopulationConfig {
            size: 60_000,
            zip_count: 6,
            ..PopulationConfig::default()
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let c = small_config();
        let p1 = Population::synthesize(c, &mut ChaCha20Rng::seed_from_u64(1));
        let p2 = Population::synthesize(c, &mut ChaCha20Rng::seed_from_u64(1));
        assert_eq!(p1.people()[..100], p2.people()[..100]);
    }

    #[test]
    fn uniqueness_in_sweeney_golle_band() {
        // Default config at full size: uniqueness must land in the 63–87%
        // band the paper's references report.
        let cfg = PopulationConfig {
            size: 200_000,
            zip_count: 20,
            ..PopulationConfig::default()
        };
        let p = Population::synthesize(cfg, &mut ChaCha20Rng::seed_from_u64(7));
        let u = p.uniqueness_rate();
        assert!(
            (0.55..=0.92).contains(&u),
            "uniqueness {u} outside calibration band"
        );
    }

    #[test]
    fn smaller_zips_increase_uniqueness() {
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let dense = Population::synthesize(
            PopulationConfig {
                size: 50_000,
                zip_count: 2,
                ..PopulationConfig::default()
            },
            &mut rng,
        );
        let sparse = Population::synthesize(
            PopulationConfig {
                size: 50_000,
                zip_count: 50,
                ..PopulationConfig::default()
            },
            &mut rng,
        );
        assert!(
            sparse.uniqueness_rate() > dense.uniqueness_rate(),
            "sparse {} !> dense {}",
            sparse.uniqueness_rate(),
            dense.uniqueness_rate()
        );
    }

    #[test]
    fn k_anonymity_histogram_accounts_everyone() {
        let p = Population::synthesize(small_config(), &mut ChaCha20Rng::seed_from_u64(4));
        let hist = p.k_anonymity_histogram(50);
        let total: usize = hist.iter().sum();
        // Nearly everyone should be in classes of size ≤ 50.
        assert!(total as f64 > 0.99 * p.len() as f64);
        assert_eq!(hist[0], 0, "no one is in a class of size 0");
    }

    #[test]
    fn sample_workers_are_distinct_people() {
        let p = Population::synthesize(small_config(), &mut ChaCha20Rng::seed_from_u64(5));
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let workers = p.sample_workers(500, &mut rng, |_, _| BehaviorModel::Random);
        let ids: std::collections::HashSet<_> = workers.iter().map(|(w, _)| w.id).collect();
        assert_eq!(ids.len(), 500);
        // Worker demographics must match their person's.
        for (w, _) in &workers {
            let person = p.person(PersonId(w.id.0)).unwrap();
            assert_eq!(w.demographics, person.demographics);
        }
    }

    #[test]
    fn smoking_rate_respected() {
        let cfg = PopulationConfig {
            smoking_rate: 0.3,
            ..small_config()
        };
        let p = Population::synthesize(cfg, &mut ChaCha20Rng::seed_from_u64(8));
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let workers = p.sample_workers(4_000, &mut rng, |_, _| BehaviorModel::Random);
        let smokers = workers
            .iter()
            .filter(|(w, _)| w.health.smoking_level >= 4)
            .count() as f64
            / workers.len() as f64;
        assert!((smokers - 0.3).abs() < 0.03, "smoker fraction {smokers}");
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_rejected() {
        let p = Population::synthesize(
            PopulationConfig {
                size: 10,
                zip_count: 2,
                ..PopulationConfig::default()
            },
            &mut ChaCha20Rng::seed_from_u64(1),
        );
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let _ = p.sample_workers(11, &mut rng, |_, _| BehaviorModel::Random);
    }

    #[test]
    fn person_lookup() {
        let p = Population::synthesize(small_config(), &mut ChaCha20Rng::seed_from_u64(1));
        assert!(p.person(PersonId(0)).is_some());
        assert!(p.person(PersonId(u64::MAX)).is_none());
    }
}
