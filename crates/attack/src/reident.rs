//! Re-identification: joining completed quasi-identifiers against the
//! registry.
//!
//! A dossier whose (date of birth, gender, ZIP) matches exactly one
//! registry record is *de-anonymized*: the adversary now knows the
//! worker's name. Matches with k > 1 candidates give a k-anonymity set —
//! still a privacy loss, quantified but not counted as de-anonymization
//! (matching the paper's "72 could be de-anonymized" accounting).

use crate::linkage::{LinkedDossier, Linker};
use crate::population::PersonId;
use crate::registry::Registry;
use serde::{Deserialize, Serialize};

/// Outcome of matching one dossier against the registry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MatchOutcome {
    /// The quasi-identifier never completed (not enough surveys linked).
    Incomplete,
    /// Completed but matches no registry record (e.g. fabricated
    /// demographics, or a person outside registry coverage).
    NoMatch,
    /// Matches exactly one person: de-anonymized.
    Unique(PersonId),
    /// Matches k > 1 people (the k-anonymity class).
    Ambiguous(Vec<PersonId>),
}

impl MatchOutcome {
    /// Whether this is a unique (de-anonymizing) match.
    pub fn is_unique(&self) -> bool {
        matches!(self, MatchOutcome::Unique(_))
    }
}

/// One re-identified worker: reported ID, person, and the dossier that
/// did it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reidentification {
    /// The platform-reported worker ID.
    pub reported_id: String,
    /// Who they are.
    pub person: PersonId,
    /// The accumulated dossier.
    pub dossier: LinkedDossier,
}

/// Matches dossiers against a registry.
#[derive(Debug)]
pub struct Reidentifier<'a> {
    registry: &'a Registry,
}

/// Summary statistics of a re-identification pass — the numbers §2
/// reports (400 unique users → 72 de-anonymized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReidentStats {
    /// Distinct reported worker IDs observed.
    pub total_ids: usize,
    /// Dossiers with a complete quasi-identifier.
    pub complete: usize,
    /// Dossiers uniquely matched (de-anonymized).
    pub unique_matches: usize,
    /// Dossiers matched to k > 1 candidates.
    pub ambiguous_matches: usize,
    /// Complete dossiers matching nothing.
    pub no_matches: usize,
}

impl<'a> Reidentifier<'a> {
    /// Creates a re-identifier over a registry.
    pub fn new(registry: &'a Registry) -> Reidentifier<'a> {
        Reidentifier { registry }
    }

    /// Matches one dossier.
    pub fn match_dossier(&self, dossier: &LinkedDossier) -> MatchOutcome {
        let Some(qi) = dossier.profile.quasi_identifier() else {
            return MatchOutcome::Incomplete;
        };
        match self.registry.lookup(&qi) {
            [] => MatchOutcome::NoMatch,
            [one] => MatchOutcome::Unique(*one),
            many => MatchOutcome::Ambiguous(many.to_vec()),
        }
    }

    /// Runs the full pass over a linker's dossiers, returning the
    /// de-anonymized workers and summary statistics.
    pub fn run(&self, linker: &Linker) -> (Vec<Reidentification>, ReidentStats) {
        let mut reidentified = Vec::new();
        let mut stats = ReidentStats {
            total_ids: linker.unique_ids(),
            complete: 0,
            unique_matches: 0,
            ambiguous_matches: 0,
            no_matches: 0,
        };
        for (id, dossier) in linker.dossiers() {
            match self.match_dossier(dossier) {
                MatchOutcome::Incomplete => {}
                MatchOutcome::NoMatch => {
                    stats.complete += 1;
                    stats.no_matches += 1;
                }
                MatchOutcome::Ambiguous(_) => {
                    stats.complete += 1;
                    stats.ambiguous_matches += 1;
                }
                MatchOutcome::Unique(person) => {
                    stats.complete += 1;
                    stats.unique_matches += 1;
                    reidentified.push(Reidentification {
                        reported_id: id.clone(),
                        person,
                        dossier: dossier.clone(),
                    });
                }
            }
        }
        (reidentified, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationConfig};
    use loki_survey::demographics::{BirthDate, Gender, PartialProfile, ZipCode};
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn pop() -> Population {
        Population::synthesize(
            PopulationConfig {
                size: 30_000,
                zip_count: 5,
                ..PopulationConfig::default()
            },
            &mut ChaCha20Rng::seed_from_u64(21),
        )
    }

    fn dossier_for(qi: &loki_survey::demographics::QuasiIdentifier) -> LinkedDossier {
        LinkedDossier {
            profile: PartialProfile {
                day: Some(qi.birth.day),
                month: Some(qi.birth.month),
                year: Some(qi.birth.year),
                gender: Some(qi.gender),
                zip: Some(qi.zip),
            },
            surveys: vec![],
            sensitive: vec![],
        }
    }

    #[test]
    fn unique_person_is_reidentified() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let reid = Reidentifier::new(&r);
        // Find a person who is unique in the registry.
        let unique_person = p
            .people()
            .iter()
            .find(|person| r.lookup(&person.demographics).len() == 1)
            .expect("some unique person exists");
        let outcome = reid.match_dossier(&dossier_for(&unique_person.demographics));
        assert_eq!(outcome, MatchOutcome::Unique(unique_person.id));
        assert!(outcome.is_unique());
    }

    #[test]
    fn shared_qi_is_ambiguous() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let reid = Reidentifier::new(&r);
        let shared = p
            .people()
            .iter()
            .find(|person| r.lookup(&person.demographics).len() > 1)
            .expect("some non-unique person exists");
        match reid.match_dossier(&dossier_for(&shared.demographics)) {
            MatchOutcome::Ambiguous(class) => {
                assert!(class.len() > 1);
                assert!(class.contains(&shared.id));
            }
            o => panic!("expected ambiguous, got {o:?}"),
        }
    }

    #[test]
    fn incomplete_dossier_not_matched() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let reid = Reidentifier::new(&r);
        let d = LinkedDossier::default();
        assert_eq!(reid.match_dossier(&d), MatchOutcome::Incomplete);
    }

    #[test]
    fn fabricated_qi_no_match() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let reid = Reidentifier::new(&r);
        let ghost = loki_survey::demographics::QuasiIdentifier {
            birth: BirthDate::new(1900, 1, 1).unwrap(),
            gender: Gender::Male,
            zip: ZipCode::new(1).unwrap(),
        };
        assert_eq!(reid.match_dossier(&dossier_for(&ghost)), MatchOutcome::NoMatch);
    }

    #[test]
    fn stats_add_up() {
        let p = pop();
        let r = Registry::from_population(&p, 1.0);
        let reid = Reidentifier::new(&r);
        let mut linker = Linker::new();
        // Build dossiers straight into the linker via ingest of synthetic
        // responses is heavier; instead exercise `run` through match
        // outcomes by constructing a linker with known dossiers.
        // Simplest: ingest nothing and check zeros.
        let (list, stats) = reid.run(&linker);
        assert!(list.is_empty());
        assert_eq!(stats.total_ids, 0);
        assert_eq!(stats.complete, 0);

        // Ingest one synthetic full-QI worker through the real path.
        use loki_platform::behavior::BehaviorModel;
        use loki_platform::spec::paper_surveys;
        use loki_platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
        let person = &p.people()[0];
        let w = WorkerProfile::new(
            WorkerId(person.id.0),
            person.demographics,
            HealthProfile {
                smoking_level: 1,
                cough_level: 1,
            },
            PrivacyAttitude {
                aware_of_profiling: true,
                would_participate_if_profiled: true,
            },
        );
        let model = BehaviorModel::Honest { opinion_noise: 0.3 };
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        for spec in &paper_surveys() {
            let mut set = loki_survey::response::ResponseSet::new();
            set.push(model.respond(&mut rng, &w, spec, "W0"));
            linker.ingest(spec, &set);
        }
        let (_, stats) = reid.run(&linker);
        assert_eq!(stats.total_ids, 1);
        assert_eq!(stats.complete, 1);
        assert_eq!(
            stats.unique_matches + stats.ambiguous_matches + stats.no_matches,
            stats.complete
        );
    }
}
