//! # loki-bench — experiment harness
//!
//! Shared utilities for the experiment binaries that regenerate every
//! table and figure of the paper (see `EXPERIMENTS.md` at the repo root
//! for the index). Each binary prints a deterministic report for a fixed
//! default seed; pass `--seed N` to vary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

/// Parses `--seed N` from the process arguments, defaulting otherwise.
pub fn seed_from_args(default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.windows(2)
        .find(|w| w[0] == "--seed")
        .and_then(|w| w[1].parse().ok())
        .unwrap_or(default)
}

/// A fixed-width text table builder for experiment reports.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders with per-column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                let sep = if i + 1 == cols { "\n" } else { "  " };
                let _ = write!(out, "{:>width$}{sep}", cells[i], width = widths[i]);
            }
        };
        write_row(&mut out, &self.header);
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--");
        let _ = writeln!(out, "{rule}");
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float cell.
pub fn f(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats an integer cell.
pub fn n(v: usize) -> String {
    v.to_string()
}

/// Prints the standard experiment banner.
pub fn banner(id: &str, title: &str, paper_claim: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {paper_claim}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha".into(), "1".into()]);
        t.row(&["b".into(), "22222".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f(1.23456), "1.235");
        assert_eq!(n(42), "42");
    }

    #[test]
    fn seed_default_when_absent() {
        assert_eq!(seed_from_args(7), 7);
    }
}
