//! EXP-5 — the accuracy/privacy trade-off (§3.2: "this trade-off …
//! is inevitable, but even with a relatively small sample size the error
//! is sufficiently small to make inferences").
//!
//! Two sweeps:
//! 1. RMSE of a bin mean vs bin size n for each privacy level — with the
//!    σ/√n prediction alongside, showing where a noisy large bin beats a
//!    clean small bin;
//! 2. Gaussian vs Laplace mechanism at matched ε (the design ablation:
//!    Loki ships Gaussian for explainability; Laplace is the pure-DP
//!    alternative).

use loki_bench::{banner, f, seed_from_args, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::mechanisms::laplace::LaplaceMechanism;
use loki_dp::mechanisms::Mechanism;
use loki_dp::params::Epsilon;
use loki_dp::sampling;
use loki_dp::utility;
use loki_dp::Sensitivity;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const POP_STD: f64 = 0.8;
const TRUTH: f64 = 3.7;

/// Empirical RMSE of the mean of `n` noisy ratings at a given σ.
fn empirical_rmse(rng: &mut ChaCha20Rng, n: usize, sigma: f64, trials: usize) -> f64 {
    let mut sum_sq = 0.0;
    for _ in 0..trials {
        let mean: f64 = (0..n)
            .map(|_| {
                let raw = sampling::gaussian(rng, TRUTH, POP_STD).clamp(1.0, 5.0);
                sampling::gaussian(rng, raw, sigma)
            })
            .sum::<f64>()
            / n as f64;
        sum_sq += (mean - TRUTH).powi(2);
    }
    (sum_sq / trials as f64).sqrt()
}

fn main() {
    let seed = seed_from_args(5);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    banner(
        "EXP-5",
        "accuracy vs privacy vs sample size",
        "error grows with privacy level, shrinks as 1/sqrt(n); small samples still usable",
    );

    // Sweep 1: RMSE vs n per level.
    let mut t = Table::new(&[
        "n", "none", "low", "medium", "high", "pred(high)",
    ]);
    for n in [5usize, 10, 20, 30, 50, 100, 200] {
        let mut cells = vec![n.to_string()];
        for level in PrivacyLevel::ALL {
            cells.push(f(empirical_rmse(&mut rng, n, level.sigma(), 400)));
        }
        cells.push(f(utility::predicted_rmse(
            POP_STD,
            PrivacyLevel::High.sigma(),
            n,
        )));
        t.row(&cells);
    }
    println!("RMSE of bin mean (400 trials/cell), prediction = sqrt((s^2+sig^2)/n):\n");
    print!("{}", t.render());

    // Crossover: the paper's medium bin (n=51, σ=1) vs none bin (n=18, σ=0).
    let none_18 = utility::predicted_rmse(POP_STD, 0.0, 18);
    let med_51 = utility::predicted_rmse(POP_STD, 1.0, 51);
    let high_30 = utility::predicted_rmse(POP_STD, 2.0, 30);
    println!(
        "\npaper's bins, predicted standard error: none/18 = {:.3}, medium/51 = {:.3}, high/30 = {:.3}",
        none_18, med_51, high_30
    );
    println!(
        "-> the medium bin ({} users) is {} accurate than the none bin despite 1.0-sigma noise,",
        51,
        if med_51 < none_18 { "MORE" } else { "less" }
    );
    println!("   matching Fig. 2's shape; the high bin stays worst (4x the noise, similar n).");

    // Equivalent sample sizes.
    let mut ess = Table::new(&["bin", "n", "effective n (noiseless equiv.)"]);
    for (level, n) in [
        (PrivacyLevel::None, 18usize),
        (PrivacyLevel::Low, 32),
        (PrivacyLevel::Medium, 51),
        (PrivacyLevel::High, 30),
    ] {
        ess.row(&[
            level.to_string(),
            n.to_string(),
            f(utility::effective_sample_size(POP_STD, level.sigma(), n)),
        ]);
    }
    println!("\n{}", ess.render());

    // Sweep 2: Gaussian (Loki) vs Laplace at matched ε, per level.
    let sens = Sensitivity::new(4.0);
    let mut mech = Table::new(&["level", "epsilon", "gaussian rmse(n=51)", "laplace rmse(n=51)"]);
    for level in [PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High] {
        let eps = level.privacy_loss(4.0).epsilon.value();
        let laplace = LaplaceMechanism::new(sens, Epsilon::new(eps));
        let g_rmse = empirical_rmse(&mut rng, 51, level.sigma(), 400);
        // Laplace has no σ parameter; draw its noise directly.
        let mut sum_sq = 0.0;
        let trials = 400;
        for _ in 0..trials {
            let mean: f64 = (0..51)
                .map(|_| {
                    let raw = sampling::gaussian(&mut rng, TRUTH, POP_STD).clamp(1.0, 5.0);
                    laplace.release(&mut rng, raw)
                })
                .sum::<f64>()
                / 51.0;
            sum_sq += (mean - TRUTH).powi(2);
        }
        mech.row(&[
            level.to_string(),
            f(eps),
            f(g_rmse),
            f((sum_sq / trials as f64).sqrt()),
        ]);
    }
    println!("mechanism ablation at matched (eps, delta={:.0e}):\n", loki_dp::DEFAULT_DELTA);
    print!("{}", mech.render());
    println!(
        "\nnote: at matched per-release eps, pure-DP Laplace is the more efficient single-shot\n\
         mechanism (the Gaussian eps comes from a delta tail bound). Loki still ships Gaussian:\n\
         (a) bell-curve noise was explainable to trial users (§3.2), and (b) Gaussian releases\n\
         compose tightly under RDP across a user's many answers — see EXP-6's 2x-tighter ledger."
    );
}
