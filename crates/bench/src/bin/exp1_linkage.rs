//! EXP-1 — §2's linkage attack, end to end.
//!
//! Paper numbers: 400 unique workers across four surveys; 72
//! de-anonymized from (DOB, gender, ZIP); respiratory health inferred for
//! 18 of them; total cost < $30; a few days of wall time.
//!
//! This binary runs the same campaign on the simulated marketplace and
//! prints the corresponding row, plus the per-survey funnel.

use loki_attack::inference::HealthInferenceRule;
use loki_attack::population::{Population, PopulationConfig};
use loki_attack::registry::Registry;
use loki_attack::reident::Reidentifier;
use loki_attack::Linker;
use loki_bench::{banner, f, n, seed_from_args, Table};
use loki_platform::behavior::BehaviorModel;
use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
use loki_platform::spec::paper_surveys;
use loki_survey::redundancy::ConsistencyFilter;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    let seed = seed_from_args(2013);
    banner(
        "EXP-1",
        "cross-survey linkage attack on a stable-ID marketplace",
        "400 unique users -> 72 de-anonymized -> 18 health-inferred; < $30; a few days",
    );

    // World: synthetic population calibrated to Sweeney/Golle uniqueness.
    let pop = Population::synthesize(
        PopulationConfig::default(),
        &mut ChaCha20Rng::seed_from_u64(seed),
    );
    println!(
        "population: {} people, QI uniqueness {:.1}% (Sweeney 87% / Golle 63%)",
        pop.len(),
        pop.uniqueness_rate() * 100.0
    );
    // Voter-roll-style registry covering 85% of the population.
    let registry = Registry::from_population(&pop, 0.85);

    // Worker pool: 450 marketplace workers; ~8% answer at random.
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 1);
    let workers = pop.sample_workers(450, &mut rng, |_, i| {
        if i % 12 == 0 {
            BehaviorModel::Random
        } else {
            BehaviorModel::Honest { opinion_noise: 0.3 }
        }
    });
    let mut market = Marketplace::new(MarketplaceConfig::default(), workers, seed ^ 2);

    let specs = paper_surveys();
    let quotas = [400usize, 350, 300, 250];
    let filter = ConsistencyFilter::new(1.0);
    let mut linker = Linker::new();
    let mut funnel = Table::new(&["survey", "quota", "responses", "kept", "days"]);
    let mut total_days = 0.0;
    for (spec, quota) in specs[..4].iter().zip(quotas) {
        let outcome = market.post_task(spec, quota);
        let (kept, _) = filter.filter(&spec.survey, &outcome.responses);
        let days = outcome.elapsed_hours / 24.0;
        total_days = f64::max(total_days, days);
        funnel.row(&[
            spec.survey.title.clone(),
            n(quota),
            n(outcome.responses.len()),
            n(kept.len()),
            f(days),
        ]);
        linker.ingest(spec, &kept);
    }
    println!("\nper-survey funnel (surveys posted independently; days overlap):");
    print!("{}", funnel.render());

    let (reids, stats) = Reidentifier::new(&registry).run(&linker);
    let exposures = HealthInferenceRule::default().infer_all(&reids);
    let at_risk = exposures.iter().filter(|e| e.at_risk).count();

    let mut result = Table::new(&["metric", "paper", "reproduced"]);
    result.row(&["unique worker IDs".into(), "400".into(), n(stats.total_ids)]);
    result.row(&[
        "complete QI dossiers".into(),
        "-".into(),
        n(stats.complete),
    ]);
    result.row(&[
        "de-anonymized (unique match)".into(),
        "72".into(),
        n(stats.unique_matches),
    ]);
    result.row(&[
        "ambiguous (k>1) matches".into(),
        "-".into(),
        n(stats.ambiguous_matches),
    ]);
    result.row(&[
        "health known by name".into(),
        "18".into(),
        n(exposures.len()),
    ]);
    result.row(&[
        "flagged respiratory risk".into(),
        "-".into(),
        n(at_risk),
    ]);
    result.row(&[
        "campaign cost ($)".into(),
        "< 30".into(),
        f(market.costs().total_dollars()),
    ]);
    result.row(&[
        "campaign wall time (days)".into(),
        "a few".into(),
        f(total_days),
    ]);
    println!("\n{}", result.render());

    // Name three victims to make the breach concrete, as the paper's
    // narrative does.
    println!("sample of re-identified workers:");
    for e in exposures.iter().take(3) {
        let name = registry.name_of(e.person).unwrap_or("?");
        println!(
            "  {} -> {} (smoking {:.1}, cough {:.1}, at-risk: {})",
            e.reported_id, name, e.smoking_level, e.cough_level, e.at_risk
        );
    }
}
