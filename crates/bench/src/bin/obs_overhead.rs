//! OBS-1 — submit-path overhead of the observability layer.
//!
//! The `loki-obs` instruments (atomic counters + fixed-bucket histograms)
//! are designed to cost a handful of atomic ops per submission. This
//! microbench drives `AppState::submit` directly — no network, no WAL —
//! with metrics disabled vs enabled, and reports the median overhead.
//! The acceptance bar for the observability layer is <5% on this path.

use loki_bench::{banner, f, n, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_server::store::AppState;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::time::{Duration, Instant};

const USERS: usize = 2_000;
const TRIALS: usize = 11;

fn survey() -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "bench");
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

fn releases() -> Vec<(String, ReleaseKind)> {
    vec![(
        "survey-1/q0".into(),
        ReleaseKind::Gaussian {
            sigma: 1.0,
            sensitivity: 4.0,
        },
    )]
}

/// One batch: a fresh state, `USERS` distinct submissions.
fn run_batch(instrumented: bool) -> Duration {
    let state = AppState::new();
    state.add_survey(survey()).unwrap();
    if instrumented {
        state.enable_metrics();
    }
    let rel = releases();
    let start = Instant::now();
    for i in 0..USERS {
        let user = format!("u{i}");
        let mut r = Response::new(user.clone(), SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(4.0));
        state
            .submit(&user, PrivacyLevel::Medium, r, &rel)
            .expect("bench submission");
    }
    start.elapsed()
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    banner(
        "OBS-1",
        "observability overhead on the submit path",
        "metrics must not tax the serving path (<5% target)",
    );

    // Warm-up interleaved so neither variant benefits from cache state.
    let mut off = Vec::with_capacity(TRIALS);
    let mut on = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        off.push(run_batch(false));
        on.push(run_batch(true));
    }
    let off_med = median(&mut off);
    let on_med = median(&mut on);

    let per_off = off_med.as_nanos() as f64 / USERS as f64;
    let per_on = on_med.as_nanos() as f64 / USERS as f64;
    let overhead = (per_on / per_off - 1.0) * 100.0;

    let mut t = Table::new(&["variant", "submits", "median batch ms", "ns/submit"]);
    t.row(&[
        "uninstrumented".into(),
        n(USERS),
        f(off_med.as_secs_f64() * 1e3),
        f(per_off),
    ]);
    t.row(&[
        "instrumented".into(),
        n(USERS),
        f(on_med.as_secs_f64() * 1e3),
        f(per_on),
    ]);
    println!("{}", t.render());
    println!("observability overhead: {overhead:+.2}% per submission");
    if overhead < 5.0 {
        println!("PASS: within the <5% budget");
    } else {
        println!("WARN: above the 5% budget on this run/host");
    }
}
