//! OBS-1 / OBS-2 — submit-path overhead of the observability layer.
//!
//! The `loki-obs` instruments (atomic counters + fixed-bucket histograms)
//! are designed to cost a handful of atomic ops per submission. This
//! microbench drives `AppState::submit` directly — no network, no WAL —
//! across three variants and reports median overheads:
//!
//! * **OBS-1**: metrics disabled vs enabled (instruments + ε-audit).
//! * **OBS-2**: instrumented vs instrumented-and-traced with recording
//!   off (`TraceConfig::disabled()`): every submission starts a trace,
//!   installs the thread-local context and finishes the trace — the
//!   per-request work `mount()` does — but sampling is off, so no span
//!   buffer is ever allocated.
//!
//! The acceptance bar is <5% for each step on this path.

use loki_bench::{banner, f, n, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_obs::{TraceConfig, Tracer};
use loki_server::store::AppState;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::time::{Duration, Instant};

const USERS: usize = 2_000;
const TRIALS: usize = 11;

fn survey() -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "bench");
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

fn releases() -> Vec<(String, ReleaseKind)> {
    vec![(
        "survey-1/q0".into(),
        ReleaseKind::Gaussian {
            sigma: 1.0,
            sensitivity: 4.0,
        },
    )]
}

/// One batch: a fresh state, `USERS` distinct submissions. With a tracer,
/// each submission pays the full per-request tracing protocol (start,
/// thread-local install, finish) exactly as the HTTP layer does.
fn run_batch(instrumented: bool, tracer: Option<&Tracer>) -> Duration {
    let state = AppState::new();
    state.add_survey(survey()).unwrap();
    if instrumented {
        state.enable_metrics();
    }
    let rel = releases();
    let start = Instant::now();
    for i in 0..USERS {
        let user = format!("u{i}");
        let mut r = Response::new(user.clone(), SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(4.0));
        match tracer {
            Some(tracer) => {
                let trace = tracer.start();
                {
                    let _guard = loki_obs::trace::set_current(trace.ctx());
                    state
                        .submit(&user, PrivacyLevel::Medium, r, &rel)
                        .expect("bench submission");
                }
                tracer.finish(trace);
            }
            None => {
                state
                    .submit(&user, PrivacyLevel::Medium, r, &rel)
                    .expect("bench submission");
            }
        }
    }
    start.elapsed()
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn verdict(label: &str, overhead: f64) {
    println!("{label}: {overhead:+.2}% per submission");
    if overhead < 5.0 {
        println!("PASS: within the <5% budget");
    } else {
        println!("WARN: above the 5% budget on this run/host");
    }
}

fn main() {
    banner(
        "OBS-1/OBS-2",
        "observability + tracing overhead on the submit path",
        "neither metrics nor compiled-in tracing may tax serving (<5% each)",
    );

    let disabled = Tracer::new(0xbe6c, TraceConfig::disabled());

    // Warm-up interleaved so no variant benefits from cache state.
    let mut off = Vec::with_capacity(TRIALS);
    let mut on = Vec::with_capacity(TRIALS);
    let mut traced = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        off.push(run_batch(false, None));
        on.push(run_batch(true, None));
        traced.push(run_batch(true, Some(&disabled)));
    }
    let off_med = median(&mut off);
    let on_med = median(&mut on);
    let traced_med = median(&mut traced);

    let per_off = off_med.as_nanos() as f64 / USERS as f64;
    let per_on = on_med.as_nanos() as f64 / USERS as f64;
    let per_traced = traced_med.as_nanos() as f64 / USERS as f64;

    let mut t = Table::new(&["variant", "submits", "median batch ms", "ns/submit"]);
    t.row(&[
        "uninstrumented".into(),
        n(USERS),
        f(off_med.as_secs_f64() * 1e3),
        f(per_off),
    ]);
    t.row(&[
        "instrumented".into(),
        n(USERS),
        f(on_med.as_secs_f64() * 1e3),
        f(per_on),
    ]);
    t.row(&[
        "traced (recording off)".into(),
        n(USERS),
        f(traced_med.as_secs_f64() * 1e3),
        f(per_traced),
    ]);
    println!("{}", t.render());
    assert!(
        disabled.is_empty(),
        "recording-off tracer must retain nothing"
    );
    verdict("OBS-1 metrics overhead", (per_on / per_off - 1.0) * 100.0);
    verdict(
        "OBS-2 tracing overhead (sampling off, vs instrumented)",
        (per_traced / per_on - 1.0) * 100.0,
    );
}
