//! EXP-7 — worker-ID policy ablation.
//!
//! §2 identifies the stable AMT worker ID as the attack's root cause.
//! This experiment reruns the EXP-1 campaign under the three ID policies
//! and shows the attack collapsing the moment IDs stop being linkable —
//! the design point that motivates Loki's per-source control.

use loki_attack::inference::HealthInferenceRule;
use loki_attack::population::{Population, PopulationConfig};
use loki_attack::registry::Registry;
use loki_attack::reident::Reidentifier;
use loki_attack::Linker;
use loki_bench::{banner, f, n, seed_from_args, Table};
use loki_platform::behavior::BehaviorModel;
use loki_platform::idpolicy::IdPolicy;
use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
use loki_platform::spec::paper_surveys;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    let seed = seed_from_args(7);
    banner(
        "EXP-7",
        "attack yield vs worker-ID policy",
        "stable IDs enable linkage; per-survey pseudonyms break it (root-cause ablation)",
    );

    let pop = Population::synthesize(
        PopulationConfig::default(),
        &mut ChaCha20Rng::seed_from_u64(seed),
    );
    let registry = Registry::from_population(&pop, 0.85);

    let mut t = Table::new(&[
        "id policy",
        "unique ids",
        "complete QIs",
        "de-anonymized",
        "reident rate",
        "health exposed",
    ]);

    for (policy, label) in [
        (IdPolicy::Stable, "stable (AMT)"),
        (IdPolicy::PerSurvey, "per-survey pseudonym"),
        (IdPolicy::PerSubmission, "per-submission pseudonym"),
    ] {
        let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 1);
        let workers = pop.sample_workers(450, &mut rng, |_, _| BehaviorModel::Honest {
            opinion_noise: 0.3,
        });
        let mut market = Marketplace::new(
            MarketplaceConfig {
                id_policy: policy,
                ..MarketplaceConfig::default()
            },
            workers,
            seed ^ 2,
        );
        let specs = paper_surveys();
        let mut linker = Linker::new();
        for (spec, quota) in specs[..4].iter().zip([400usize, 350, 300, 250]) {
            let outcome = market.post_task(spec, quota);
            linker.ingest(spec, &outcome.responses);
        }
        let (reids, stats) = Reidentifier::new(&registry).run(&linker);
        let exposures = HealthInferenceRule::default().infer_all(&reids);
        t.row(&[
            label.to_string(),
            n(stats.total_ids),
            n(stats.complete),
            n(stats.unique_matches),
            f(stats.unique_matches as f64 / stats.total_ids.max(1) as f64),
            n(exposures.len()),
        ]);
    }
    println!("{}", t.render());
    println!(
        "\nnote: pseudonym policies multiply the number of *observed* IDs (one per survey or\n\
         submission) while driving completed quasi-identifiers — and hence the attack — to zero.\n\
         Loki goes further: even within one survey, answers arrive pre-noised."
    );
}
