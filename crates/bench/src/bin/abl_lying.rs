//! Ablation — the folk defence: lying about demographics.
//!
//! Before Loki, a privacy-conscious worker's only defence was fabricating
//! demographic answers. This ablation sweeps the fraction of
//! privacy-protective (lying) workers and shows why it is a poor
//! equilibrium: liars protect *themselves* but leave everyone else fully
//! exposed, and the requester's aggregate answers are silently poisoned —
//! whereas Loki's calibrated noise protects everyone *and* keeps
//! aggregates unbiased.

use loki_attack::population::{Population, PopulationConfig};
use loki_attack::registry::Registry;
use loki_attack::reident::Reidentifier;
use loki_attack::Linker;
use loki_bench::{banner, f, n, seed_from_args, Table};
use loki_platform::behavior::BehaviorModel;
use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
use loki_platform::spec::{paper_surveys, QuestionSemantics};
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    let seed = seed_from_args(13);
    banner(
        "ABL-LYING",
        "fabricated demographics vs Loki's calibrated noise",
        "lying protects only the liars and biases the requester's aggregate",
    );

    let pop = Population::synthesize(
        PopulationConfig::default(),
        &mut ChaCha20Rng::seed_from_u64(seed),
    );
    let registry = Registry::from_population(&pop, 0.85);
    let specs = paper_surveys();

    let mut table = Table::new(&[
        "lying frac",
        "honest reidentified",
        "liars reidentified",
        "opinion-mean bias",
    ]);
    for percent in [0usize, 10, 25, 50] {
        let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 1);
        let workers = pop.sample_workers(400, &mut rng, |_, i| {
            if (i * 100 / 400) < percent {
                BehaviorModel::PrivacyProtective
            } else {
                BehaviorModel::Honest { opinion_noise: 0.3 }
            }
        });
        // Remember which reported IDs belong to liars (attacker can't,
        // we can — for scoring).
        let mut market = Marketplace::new(
            MarketplaceConfig {
                acceptance_prob: 1.0,
                ..MarketplaceConfig::default()
            },
            workers,
            seed ^ 2,
        );
        let mut linker = Linker::new();
        let mut opinion_sum = 0.0;
        let mut opinion_n = 0usize;
        for (spec, quota) in specs[..4].iter().zip([400usize, 400, 400, 400]) {
            let outcome = market.post_task(spec, quota);
            // Track the astrology-opinion mean the requester would compute.
            if spec.survey.id.0 == 1 {
                for r in outcome.responses.iter() {
                    for q in &spec.survey.questions {
                        if matches!(
                            spec.semantics_of(q.id),
                            Some(QuestionSemantics::Opinion { .. })
                        ) {
                            if let Some(v) =
                                r.get(q.id).and_then(loki_survey::question::Answer::as_f64)
                            {
                                opinion_sum += v;
                                opinion_n += 1;
                            }
                        }
                    }
                }
            }
            linker.ingest(spec, &outcome.responses);
        }
        let (reids, _) = Reidentifier::new(&registry).run(&linker);
        // Score: was the named person actually the worker behind the ID?
        let mut correct = 0usize;
        let mut wrong = 0usize;
        for r in &reids {
            // Worker ids reuse person ids; reported IDs are opaque, so
            // check via the dossier's true owner: a correct match names a
            // person whose demographics equal the dossier's QI *and* who
            // truly is the submitting worker. We can't invert the
            // pseudonym, so use demographic ground truth: if the named
            // person's demographics match the dossier QI and that person
            // was sampled as an honest worker, the match is correct (lying
            // workers can only produce accidental, wrong matches).
            let named = pop.person(r.person).expect("registry person exists");
            if Some(named.demographics) == r.dossier.profile.quasi_identifier() {
                // Right person *iff* the QI was truthful; liars' QIs don't
                // correspond to themselves.
                correct += 1;
            } else {
                wrong += 1;
            }
        }
        let _ = wrong;
        let honest_reids = correct; // truthful-QI matches = honest workers
        let liar_reids = reids.len() - correct; // fabricated-QI accidental hits
        let bias = if opinion_n > 0 {
            opinion_sum / opinion_n as f64 - 2.4 // 2.4 = ground-truth topic mean
        } else {
            0.0
        };
        table.row(&[
            format!("{percent}%"),
            n(honest_reids),
            n(liar_reids),
            f(bias),
        ]);
    }
    println!("{}", table.render());
    println!(
        "honest workers stay exactly as exposed no matter how many others lie; liars are\n\
         (almost) never correctly named but occasionally frame someone else (accidental\n\
         matches). Loki instead noises everyone's answers with known statistics, so the\n\
         requester can correct for it — see exp4/exp5."
    );
}
