//! EXP-8 — redundancy-based filtering of random responders.
//!
//! §2: "We designed our surveys with sufficient redundancy to help us
//! identify and filter out users who gave random responses." This
//! experiment sweeps the random-responder fraction and the number of
//! redundant pairs, reporting the filter's precision/recall.

use loki_attack::metrics::PrecisionRecall;
use loki_bench::{banner, f, n, seed_from_args, Table};
use loki_platform::behavior::BehaviorModel;
use loki_platform::spec::{QuestionSemantics, SurveySpecBuilder};
use loki_platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
use loki_survey::demographics::{BirthDate, Gender, QuasiIdentifier, ZipCode};
use loki_survey::question::QuestionKind;
use loki_survey::redundancy::ConsistencyFilter;
use loki_survey::survey::SurveyId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

/// A survey with `pairs` redundant question pairs on the same topic.
fn survey_with_pairs(pairs: usize) -> loki_platform::spec::SurveySpec {
    let mut b = SurveySpecBuilder::new(SurveyId(1), format!("{pairs}-pair survey"));
    for p in 0..pairs {
        let a = b.question(
            format!("rate topic {p} (wording A)"),
            QuestionKind::likert5(),
            false,
            QuestionSemantics::Opinion {
                topic: p as u32,
                topic_mean: 3.0 + (p % 3) as f64 * 0.5,
            },
        );
        let c = b.question(
            format!("rate topic {p} (wording B)"),
            QuestionKind::likert5(),
            false,
            QuestionSemantics::Opinion {
                topic: p as u32,
                topic_mean: 3.0 + (p % 3) as f64 * 0.5,
            },
        );
        b.redundant(a, c);
    }
    b.build()
}

fn worker(id: u64) -> WorkerProfile {
    WorkerProfile::new(
        WorkerId(id),
        QuasiIdentifier {
            birth: BirthDate::new(1970 + (id % 30) as u16, 1 + (id % 12) as u8, 1 + (id % 28) as u8)
                .unwrap(),
            gender: if id.is_multiple_of(2) { Gender::Female } else { Gender::Male },
            zip: ZipCode::new(10_000 + id as u32 % 1000).unwrap(),
        },
        HealthProfile {
            smoking_level: 1,
            cough_level: 1,
        },
        PrivacyAttitude {
            aware_of_profiling: false,
            would_participate_if_profiled: false,
        },
    )
}

fn main() {
    let seed = seed_from_args(8);
    banner(
        "EXP-8",
        "random-responder filtering via redundant questions",
        "redundancy lets the requester filter random responses before analysis",
    );

    let n_workers = 400usize;
    let threshold = 1.0;

    // Sweep 1: detection vs number of redundant pairs at 20% random.
    let mut t = Table::new(&["pairs", "precision", "recall", "f1"]);
    for pairs in [1usize, 2, 3, 5, 8] {
        let spec = survey_with_pairs(pairs);
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let filter = ConsistencyFilter::new(threshold);
        let mut predicted = Vec::new();
        let mut truth = Vec::new();
        for i in 0..n_workers {
            let is_random = i % 5 == 0; // 20%
            let w = worker(i as u64);
            let model = if is_random {
                BehaviorModel::Random
            } else {
                BehaviorModel::Honest { opinion_noise: 0.3 }
            };
            let r = model.respond(&mut rng, &w, &spec, &format!("W{i}"));
            let rejected = !filter.score(&spec.survey, &r).passes(threshold);
            predicted.push(rejected);
            truth.push(is_random);
        }
        let pr = PrecisionRecall::from_predictions(&predicted, &truth);
        t.row(&[n(pairs), f(pr.precision()), f(pr.recall()), f(pr.f1())]);
    }
    println!("detector quality vs redundant pairs (20% random responders, |d|<=1 passes):\n");
    print!("{}", t.render());

    // Sweep 2: fixed 3 pairs, varying contamination.
    let spec = survey_with_pairs(3);
    let mut t2 = Table::new(&["random frac", "precision", "recall", "kept honest frac"]);
    for percent in [5usize, 10, 20, 40] {
        let mut rng = ChaCha20Rng::seed_from_u64(seed ^ percent as u64);
        let filter = ConsistencyFilter::new(threshold);
        let mut predicted = Vec::new();
        let mut truth = Vec::new();
        for i in 0..n_workers {
            let is_random = (i * percent) % 100 < percent;
            let w = worker(i as u64);
            let model = if is_random {
                BehaviorModel::Random
            } else {
                BehaviorModel::Honest { opinion_noise: 0.3 }
            };
            let r = model.respond(&mut rng, &w, &spec, &format!("W{i}"));
            predicted.push(!filter.score(&spec.survey, &r).passes(threshold));
            truth.push(is_random);
        }
        let pr = PrecisionRecall::from_predictions(&predicted, &truth);
        let honest_total = truth.iter().filter(|t| !**t).count();
        let kept_honest = predicted
            .iter()
            .zip(&truth)
            .filter(|(p, t)| !**p && !**t)
            .count();
        t2.row(&[
            format!("{percent}%"),
            f(pr.precision()),
            f(pr.recall()),
            f(kept_honest as f64 / honest_total as f64),
        ]);
    }
    println!("\ncontamination sweep at 3 redundant pairs:\n");
    print!("{}", t2.render());
    println!(
        "\nshape: recall climbs steeply with pairs (each pair is an independent ~50% check on a\n\
         random responder) while honest responders are essentially never rejected — the paper's\n\
         'sufficient redundancy' is 2-3 pairs."
    );
}
