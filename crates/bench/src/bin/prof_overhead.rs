//! PROF-1 — continuous-profiling overhead on the submit path.
//!
//! The profiling layer is three pieces of always-on telemetry: the
//! phase-tagged wall-clock sampler (~97 Hz reads of per-thread relaxed
//! atomics), the counting global allocator (three relaxed bumps per
//! alloc/free), and phase tags on the submit path itself (one relaxed
//! store per section). This bench drives `AppState::submit` from
//! `THREADS` concurrent submitters — phase tags exercised exactly as in
//! production — and compares profiling fully ON (allocator counting +
//! sampler running) against fully OFF, interleaved so neither variant
//! owns the warmer half of the run.
//!
//! The acceptance bar is **<2%** median overhead per submission;
//! override with `LOKI_PROF1_MAX` (e.g. on noisy shared runners).
//! Emits `BENCH_PROF1.json` (CI uploads it as an artifact), including
//! the phase-attribution ratio observed under load.

use loki_bench::{banner, f, n, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_server::store::AppState;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

// The bench bin installs the counting allocator exactly as the server
// bin does, so the ON variant measures the real production configuration
// (counting enabled) and OFF measures the same wrapper with the
// bookkeeping gated off — the forwarding cost itself is part of both.
#[global_allocator]
static ALLOC: loki_obs::CountingAlloc = loki_obs::CountingAlloc::new();

const THREADS: usize = 4;
const SUBMITS_PER_THREAD: usize = 512;
const TRIALS: usize = 7;

fn survey() -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "bench");
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

fn releases() -> Vec<(String, ReleaseKind)> {
    vec![(
        "survey-1/q0".into(),
        ReleaseKind::Gaussian {
            sigma: 1.0,
            sensitivity: 4.0,
        },
    )]
}

/// One batch: a fresh instrumented state, `THREADS` registered submitter
/// threads pushing `SUBMITS_PER_THREAD` distinct-user submissions each.
fn run_trial() -> Duration {
    let state = Arc::new(AppState::new());
    state.add_survey(survey()).expect("bench survey");
    state.enable_metrics();
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let state = Arc::clone(&state);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let _prof = loki_obs::prof::register_thread("bench.submit", t as u16);
                let rel = releases();
                barrier.wait();
                for i in 0..SUBMITS_PER_THREAD {
                    loki_obs::phase!("bench.loop");
                    let user = format!("t{t}u{i}");
                    let mut r = Response::new(user.clone(), SurveyId(1));
                    r.answer(QuestionId(0), Answer::Obfuscated(4.0));
                    state
                        .submit(&user, PrivacyLevel::Medium, r, &rel)
                        .expect("bench submission");
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("submitter thread");
    }
    start.elapsed()
}

/// Switches the whole profiling layer on or off between trials. The
/// sampler thread keeps running either way (it is process-lifetime);
/// disabled it skips the read pass, which is the production off-switch.
fn set_profiling(on: bool) {
    loki_obs::CountingAlloc::set_enabled(on);
    loki_obs::prof::set_sampler_enabled(on);
}

/// Attribution probe: submitters loop under load while the main thread
/// snapshots the live profiler, so the ratio is measured exactly as a
/// `/v1/profile` scrape under concurrent submit traffic would see it.
fn attribution_ratio() -> (u64, u64) {
    set_profiling(true);
    let state = Arc::new(AppState::new());
    state.add_survey(survey()).expect("bench survey");
    state.enable_metrics();
    let stop = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let _prof = loki_obs::prof::register_thread("bench.submit", t as u16);
                let rel = releases();
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    loki_obs::phase!("bench.loop");
                    let user = format!("p{t}u{i}");
                    i += 1;
                    let mut r = Response::new(user.clone(), SurveyId(1));
                    r.answer(QuestionId(0), Answer::Obfuscated(4.0));
                    state
                        .submit(&user, PrivacyLevel::Medium, r, &rel)
                        .expect("bench submission");
                }
            })
        })
        .collect();
    // ~50 sampler ticks at 97 Hz — enough for a stable ratio.
    std::thread::sleep(Duration::from_millis(500));
    let snap = loki_obs::prof::snapshot();
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        h.join().expect("submitter thread");
    }
    (snap.attributed_samples(), snap.total_samples())
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    banner(
        "PROF-1",
        "continuous-profiling overhead on the concurrent submit path",
        "sampler + counting allocator + phase tags must cost <2%",
    );
    loki_obs::prof::start_sampler();

    let mut off = Vec::with_capacity(TRIALS);
    let mut on = Vec::with_capacity(TRIALS);
    for _ in 0..TRIALS {
        set_profiling(false);
        off.push(run_trial());
        set_profiling(true);
        on.push(run_trial());
    }
    let off_med = median(&mut off);
    let on_med = median(&mut on);
    let total = (THREADS * SUBMITS_PER_THREAD) as f64;
    let per_off = off_med.as_nanos() as f64 / total;
    let per_on = on_med.as_nanos() as f64 / total;
    let overhead = (per_on / per_off - 1.0) * 100.0;

    let mut t = Table::new(&["variant", "submits", "median wall ms", "ns/submit"]);
    t.row(&[
        "profiling off".into(),
        n(THREADS * SUBMITS_PER_THREAD),
        f(off_med.as_secs_f64() * 1e3),
        f(per_off),
    ]);
    t.row(&[
        "profiling on".into(),
        n(THREADS * SUBMITS_PER_THREAD),
        f(on_med.as_secs_f64() * 1e3),
        f(per_on),
    ]);
    println!("{}", t.render());
    println!("PROF-1 overhead: {overhead:+.2}% per submission");

    let (attributed, sampled) = attribution_ratio();
    let ratio = if sampled == 0 {
        0.0
    } else {
        attributed as f64 / sampled as f64
    };
    println!("phase attribution under load: {attributed}/{sampled} samples ({:.1}%)", ratio * 100.0);
    if sampled > 0 && ratio < 0.95 {
        println!("WARN: attribution below 95% on this run/host");
    }

    let bar: f64 = std::env::var("LOKI_PROF1_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let pass = overhead < bar;

    let report = serde_json::json!({
        "bench": "PROF-1",
        "threads": THREADS,
        "submits_per_thread": SUBMITS_PER_THREAD,
        "trials": TRIALS,
        "off_median_wall_ms": off_med.as_secs_f64() * 1e3,
        "on_median_wall_ms": on_med.as_secs_f64() * 1e3,
        "ns_per_submit_off": per_off,
        "ns_per_submit_on": per_on,
        "overhead_pct": overhead,
        "attributed_samples": attributed,
        "total_samples": sampled,
        "attribution_ratio": ratio,
        "max_allowed_pct": bar,
        "pass": pass,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_PROF1.json", json).expect("write BENCH_PROF1.json");
    println!("wrote BENCH_PROF1.json");

    if pass {
        println!("PASS: < {bar:.1}%");
    } else {
        println!("FAIL: at or above the {bar:.1}% bar");
        std::process::exit(1);
    }
}
