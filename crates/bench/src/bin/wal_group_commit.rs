//! GC-1 — group commit vs per-submit fsync on the durable submit path.
//!
//! The WAL-first pipeline acks a submission only after its journal record
//! is fsync-durable, which makes fsync the hot-path cost. Group commit is
//! what keeps that affordable: N concurrent submitters enqueue on the
//! committer and share ~1 fsync per batch instead of paying N. This bench
//! drives `AppState::submit` from 8 threads against a real on-disk
//! journal in both modes — `max_batch: 1` (every record pays its own
//! fsync; the pre-group-commit cost model) vs the default batching — and
//! reports the throughput ratio. The acceptance bar (asserted in CI) is
//! **≥2×** at concurrency 8; on ordinary disks the measured ratio is far
//! higher. Override the bar with `LOKI_GC1_MIN` (e.g. on tmpfs-backed CI
//! where fsync is nearly free and batching has nothing to amortize).

use loki_bench::{banner, f, n, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_server::store::AppState;
use loki_server::wal::{GroupCommitConfig, Wal};
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const SUBMITS_PER_THREAD: usize = 64;
const TRIALS: usize = 5;

fn survey() -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "bench");
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

fn releases() -> Vec<(String, ReleaseKind)> {
    vec![(
        "survey-1/q0".into(),
        ReleaseKind::Gaussian {
            sigma: 1.0,
            sensitivity: 4.0,
        },
    )]
}

/// One trial: a fresh state + journal, 8 threads × 64 distinct users
/// submitting concurrently. Returns the wall time of the submit storm.
fn run_trial(dir: &std::path::Path, trial: usize, max_batch: usize) -> Duration {
    let path = dir.join(format!("gc1-{max_batch}-{trial}.jsonl"));
    let _ = std::fs::remove_file(&path);
    let state = Arc::new(AppState::new());
    state.add_survey(survey()).unwrap();
    state.attach_journal_with(
        Wal::open(&path).expect("open bench journal"),
        GroupCommitConfig { max_batch },
    );

    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let state = Arc::clone(&state);
            let barrier = Arc::clone(&barrier);
            let rel = releases();
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..SUBMITS_PER_THREAD {
                    let user = format!("t{t}-u{i}");
                    let mut r = Response::new(user.clone(), SurveyId(1));
                    r.answer(QuestionId(0), Answer::Obfuscated(4.0));
                    state
                        .submit(&user, PrivacyLevel::Medium, r, &rel)
                        .expect("bench submission");
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench thread");
    }
    let elapsed = start.elapsed();
    state.detach_journal();
    let _ = std::fs::remove_file(&path);
    elapsed
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    banner(
        "GC-1",
        "group commit vs per-submit fsync, 8 concurrent submitters",
        "durability must not cost one fsync per submit (>=2x target)",
    );
    let dir = std::env::temp_dir().join(format!("loki-gc1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");

    // Interleave trials so neither variant owns the warmer half.
    let mut per_fsync = Vec::with_capacity(TRIALS);
    let mut grouped = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        per_fsync.push(run_trial(&dir, trial, 1));
        grouped.push(run_trial(&dir, trial, GroupCommitConfig::default().max_batch));
    }
    let _ = std::fs::remove_dir_all(&dir);

    let total = (THREADS * SUBMITS_PER_THREAD) as f64;
    let base = median(&mut per_fsync);
    let batched = median(&mut grouped);
    let base_rate = total / base.as_secs_f64();
    let batched_rate = total / batched.as_secs_f64();
    let speedup = batched_rate / base_rate;

    let mut t = Table::new(&["variant", "submits", "median wall ms", "submits/s"]);
    t.row(&[
        "per-submit fsync (max_batch=1)".into(),
        n(THREADS * SUBMITS_PER_THREAD),
        f(base.as_secs_f64() * 1e3),
        f(base_rate),
    ]);
    t.row(&[
        "group commit (default)".into(),
        n(THREADS * SUBMITS_PER_THREAD),
        f(batched.as_secs_f64() * 1e3),
        f(batched_rate),
    ]);
    println!("{}", t.render());
    println!("GC-1 speedup at concurrency {THREADS}: {speedup:.2}x");

    let bar: f64 = std::env::var("LOKI_GC1_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    if speedup >= bar {
        println!("PASS: >= {bar:.1}x");
    } else {
        println!("FAIL: below the {bar:.1}x bar");
        std::process::exit(1);
    }
}
