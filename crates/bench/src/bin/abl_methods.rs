//! Ablation — obfuscation method comparison.
//!
//! §3.1: the noise-adding method "is general and can be applied to other
//! question types … in which the response set is countable". The library
//! ships three instantiations for numeric answers; this ablation compares
//! them at every privacy level on the trial's workload: estimator RMSE at
//! n = 51 (the paper's medium bin) and the per-answer ledger charge.

use loki_bench::{banner, f, seed_from_args, Table};
use loki_core::obfuscate::{ObfuscationMethod, Obfuscator};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::sampling;
use loki_survey::question::{Answer, Question, QuestionKind};
use loki_survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const N: usize = 51;
const TRIALS: usize = 500;
const TRUTH: f64 = 3.7;
const POP_STD: f64 = 0.8;

fn rmse(rng: &mut ChaCha20Rng, level: PrivacyLevel, method: ObfuscationMethod) -> f64 {
    let q = Question {
        id: QuestionId(0),
        text: "rate".into(),
        kind: QuestionKind::likert5(),
        sensitive: false,
    };
    let obf = Obfuscator::new(level).with_method(method);
    let mut sum_sq = 0.0;
    for _ in 0..TRIALS {
        let mean: f64 = (0..N)
            .map(|_| {
                let raw = sampling::gaussian(rng, TRUTH, POP_STD)
                    .round()
                    .clamp(1.0, 5.0);
                obf.obfuscate_answer(rng, &q, &Answer::Rating(raw))
                    .unwrap()
                    .answer
                    .as_f64()
                    .unwrap()
            })
            .sum::<f64>()
            / N as f64;
        // Compare against the clamped-rounded population mean this
        // workload actually has.
        sum_sq += (mean - TRUTH).powi(2);
    }
    (sum_sq / TRIALS as f64).sqrt()
}

fn main() {
    let seed = seed_from_args(14);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    banner(
        "ABL-METHODS",
        "continuous Gaussian vs discrete Gaussian vs ordinal exponential",
        "the paper ships continuous Gaussian; alternatives trade wire format for bias",
    );

    let mut table = Table::new(&[
        "level",
        "continuous rmse",
        "discrete rmse",
        "ordinal rmse",
        "ledger charge",
    ]);
    for level in [PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High] {
        let cont = rmse(&mut rng, level, ObfuscationMethod::Continuous);
        let disc = rmse(&mut rng, level, ObfuscationMethod::DiscreteInteger);
        let ord = rmse(&mut rng, level, ObfuscationMethod::OrdinalExponential);
        let charge = format!(
            "ε={:.2} (gauss RDP) / ε={:.2} pure (ordinal)",
            level.privacy_loss(4.0).epsilon.value(),
            level.randomized_response_epsilon().unwrap()
        );
        table.row(&[level.to_string(), f(cont), f(disc), f(ord), charge]);
    }
    println!("{}", table.render());

    // Edge-of-scale bias: a true answer of 5 can only be perturbed
    // downward by an on-scale mechanism. Measure the mean of 100k
    // perturbed 5s per method.
    let q = Question {
        id: QuestionId(0),
        text: "rate".into(),
        kind: QuestionKind::likert5(),
        sensitive: false,
    };
    let mut bias_table = Table::new(&["level", "continuous bias@5", "discrete bias@5", "ordinal bias@5"]);
    for level in [PrivacyLevel::Medium, PrivacyLevel::High] {
        let mut cells = vec![level.to_string()];
        for method in [
            ObfuscationMethod::Continuous,
            ObfuscationMethod::DiscreteInteger,
            ObfuscationMethod::OrdinalExponential,
        ] {
            let obf = Obfuscator::new(level).with_method(method);
            let n = 100_000;
            let mean: f64 = (0..n)
                .map(|_| {
                    obf.obfuscate_answer(&mut rng, &q, &Answer::Rating(5.0))
                        .unwrap()
                        .answer
                        .as_f64()
                        .unwrap()
                })
                .sum::<f64>()
                / n as f64;
            cells.push(f(mean - 5.0));
        }
        bias_table.row(&cells);
    }
    println!("\nedge-of-scale bias (mean of perturbed '5' answers, minus 5):\n");
    print!("{}", bias_table.render());

    println!(
        "\nobservations:\n\
         - discrete Gaussian ≈ continuous in RMSE (same σ) while uploading integers; both\n\
           are *unbiased everywhere*, including the scale edge;\n\
         - the ordinal exponential mechanism keeps uploads on-scale 1..5 and looks best at\n\
           mid-scale, but at the edge it is systematically biased downward (a 5 can only be\n\
           perturbed toward 1) — the bias does not average out with more users. This is\n\
           exactly why Loki uploads off-scale values (Fig. 1(c)) instead of clamping;\n\
         - all three charge the ledger with comparable per-answer guarantees."
    );
}
