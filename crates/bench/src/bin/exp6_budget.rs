//! EXP-6 — cumulative privacy loss tracking and balancing (§3.1's claim
//! that loss "can be tracked and balanced across the user base").
//!
//! A 30-survey campaign over 200 users, 60 respondents per survey, one
//! Gaussian release per response. Three views:
//!
//! 1. per-user cumulative ε under uniform recruitment vs the least-loss
//!    balancer;
//! 2. tight (RDP) vs basic-composition accounting for the heaviest user;
//! 3. growth of the maximum cumulative ε over campaign rounds.

use loki_bench::{banner, f, n, seed_from_args, Table};
use loki_core::ledger::{AllocationStrategy, BudgetBalancer};
use loki_dp::accountant::{Accountant, ReleaseKind, UserLedger};
use loki_dp::params::Delta;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const USERS: usize = 200;
const SURVEYS: usize = 30;
const PER_SURVEY: usize = 60;

fn release() -> ReleaseKind {
    // Medium privacy on a 1–5 rating.
    ReleaseKind::Gaussian {
        sigma: 1.0,
        sensitivity: 4.0,
    }
}

fn run(strategy: AllocationStrategy, seed: u64) -> (Accountant, Vec<f64>) {
    let accountant = Accountant::new();
    let users: Vec<String> = (0..USERS).map(|i| format!("u{i:03}")).collect();
    let balancer = BudgetBalancer::new(strategy);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);
    let mut max_by_round = Vec::with_capacity(SURVEYS);
    for round in 0..SURVEYS {
        let picked = balancer.select(&mut rng, &accountant, &users, PER_SURVEY);
        for user in picked {
            accountant.record(&user, format!("s{round}"), release());
        }
        max_by_round.push(balancer.loss_summary(&accountant, &users).max);
    }
    (accountant, max_by_round)
}

fn main() {
    let seed = seed_from_args(6);
    banner(
        "EXP-6",
        "cumulative-loss tracking and balancing across the user base",
        "framework tracks per-user loss so it can be balanced across users",
    );

    let (uniform_acc, uniform_curve) = run(AllocationStrategy::Uniform, seed);
    let (balanced_acc, balanced_curve) = run(AllocationStrategy::LeastLoss, seed);

    let users: Vec<String> = (0..USERS).map(|i| format!("u{i:03}")).collect();
    let b = BudgetBalancer::new(AllocationStrategy::LeastLoss);
    let u_sum = b.loss_summary(&uniform_acc, &users);
    let l_sum = b.loss_summary(&balanced_acc, &users);

    let mut t = Table::new(&["allocation", "max eps", "p95 eps", "mean eps"]);
    t.row(&["uniform (status quo)".into(), f(u_sum.max), f(u_sum.p95), f(u_sum.mean)]);
    t.row(&["least-loss balancer".into(), f(l_sum.max), f(l_sum.p95), f(l_sum.mean)]);
    println!("{}", t.render());
    println!(
        "balancing cuts the worst-case user's cumulative eps by {:.0}% at identical utility\n\
         (same number of responses per survey).\n",
        (1.0 - l_sum.max / u_sum.max) * 100.0
    );

    // Growth curves.
    let mut curve = Table::new(&["round", "max eps (uniform)", "max eps (balanced)"]);
    for r in (4..SURVEYS).step_by(5) {
        curve.row(&[n(r + 1), f(uniform_curve[r]), f(balanced_curve[r])]);
    }
    println!("{}", curve.render());

    // Accounting ablation: tight (RDP) vs basic composition for a user
    // who answered every survey.
    let mut heavy = UserLedger::new();
    for i in 0..SURVEYS {
        heavy.record(format!("s{i}"), release());
    }
    let delta = Delta::new(loki_dp::DEFAULT_DELTA);
    let basic = heavy.basic_loss().epsilon.value();
    let tight = heavy.tight_loss(delta).epsilon.value();
    println!(
        "\naccounting ablation ({} releases, sigma=1, delta=1e-5):\n\
         basic composition eps = {:.2}; RDP-tight eps = {:.2} ({:.1}x tighter)",
        SURVEYS,
        basic,
        tight,
        basic / tight
    );
    println!("-> tight accounting is what makes long-horizon participation budgets workable.");
}
