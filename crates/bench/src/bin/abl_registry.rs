//! Ablation — attack yield vs external-registry coverage.
//!
//! DESIGN.md fixes registry coverage at 85% for EXP-1; this ablation
//! sweeps it. Re-identification scales linearly with coverage (a worker
//! can only be named if they're in the registry), which bounds how much
//! the headline numbers depend on that choice.

use loki_attack::inference::HealthInferenceRule;
use loki_attack::population::{Population, PopulationConfig};
use loki_attack::registry::Registry;
use loki_attack::reident::Reidentifier;
use loki_attack::Linker;
use loki_bench::{banner, f, n, seed_from_args, Table};
use loki_platform::behavior::BehaviorModel;
use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
use loki_platform::spec::paper_surveys;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    let seed = seed_from_args(12);
    banner(
        "ABL-REGISTRY",
        "de-anonymization yield vs registry coverage",
        "EXP-1 assumes an 85%-coverage registry; the attack degrades gracefully below that",
    );

    let pop = Population::synthesize(
        PopulationConfig::default(),
        &mut ChaCha20Rng::seed_from_u64(seed),
    );

    // One campaign, replayed against registries of varying coverage.
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 1);
    let workers = pop.sample_workers(450, &mut rng, |_, _| BehaviorModel::Honest {
        opinion_noise: 0.3,
    });
    let mut market = Marketplace::new(MarketplaceConfig::default(), workers, seed ^ 2);
    let specs = paper_surveys();
    let mut linker = Linker::new();
    for (spec, quota) in specs[..4].iter().zip([400usize, 350, 300, 250]) {
        let outcome = market.post_task(spec, quota);
        linker.ingest(spec, &outcome.responses);
    }

    let mut table = Table::new(&[
        "coverage",
        "de-anonymized",
        "reident rate",
        "health exposed",
    ]);
    for coverage in [0.25, 0.5, 0.75, 0.85, 1.0] {
        let registry = Registry::from_population(&pop, coverage);
        let (reids, stats) = Reidentifier::new(&registry).run(&linker);
        let exposures = HealthInferenceRule::default().infer_all(&reids);
        table.row(&[
            format!("{:.0}%", coverage * 100.0),
            n(stats.unique_matches),
            f(stats.unique_matches as f64 / stats.total_ids.max(1) as f64),
            n(exposures.len()),
        ]);
    }
    println!("{}", table.render());
    println!(
        "note: yield is roughly linear in coverage — even a 25% voter roll names dozens of\n\
         workers. The defence cannot be 'hope the registry is incomplete'."
    );
}
