//! SHARD-1 — submit throughput scaling across store shard counts.
//!
//! The pre-shard store serialized every submission behind process-wide
//! locks: one `submissions` map, one `user_locks` registry, so adding
//! submitter threads bought nothing. The sharded store routes each
//! survey to its own shard (maps + locks + WAL lane), so submissions to
//! unrelated surveys never touch the same lock. This bench measures
//! exactly that effect: 8 submitter threads, each hammering its *own*
//! survey (chosen so the 8 surveys land on 8 distinct shards at the top
//! of the sweep), against in-memory stores built with 1 → 8 shards.
//! No journal is attached — the point is lock contention, not fsync
//! amortization (that is GC-1's axis).
//!
//! Reports aggregate submits/s per shard count and the 8-shard vs
//! 1-shard speedup, and writes the machine-readable result to
//! `BENCH_SHARD1.json` (the repo's first tracked perf trajectory; CI
//! uploads it as an artifact). The acceptance bar is **≥3×** at 8 shards
//! vs 1 on an 8-way host; override with `LOKI_SHARD1_MIN` (e.g. on a
//! 2-core runner where 8 threads cannot physically scale).

use loki_bench::{banner, f, n, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_server::store::AppState;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const THREADS: usize = 8;
const SUBMITS_PER_THREAD: usize = 1024;
const TRIALS: usize = 5;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn survey(id: u64) -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(id), format!("bench-{id}"));
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

fn releases(id: u64) -> Vec<(String, ReleaseKind)> {
    vec![(
        format!("survey-{id}/q0"),
        ReleaseKind::Gaussian {
            sigma: 1.0,
            sensitivity: 4.0,
        },
    )]
}

/// Picks `THREADS` survey ids that land on pairwise-distinct shards at
/// the top of the sweep, so "disjoint surveys" also means disjoint
/// shards there — the sweep then measures lock contention, not hash
/// collisions. Deterministic: the routing hash is fixed.
fn disjoint_survey_ids() -> Vec<u64> {
    let max = *SHARD_COUNTS.iter().max().expect("non-empty sweep");
    let probe = AppState::with_shards(max);
    let mut seen = vec![false; max];
    let mut ids = Vec::with_capacity(THREADS);
    let mut id = 1u64;
    while ids.len() < THREADS {
        let shard = probe.shard_of_survey(SurveyId(id));
        if !seen[shard] {
            seen[shard] = true;
            ids.push(id);
        }
        id += 1;
    }
    ids
}

/// One trial: a fresh in-memory state with `shards` shards, 8 threads
/// each submitting `SUBMITS_PER_THREAD` distinct users to its own
/// survey. Returns the wall time of the submit storm (payloads are
/// pre-built outside the timed section).
fn run_trial(shards: usize, ids: &[u64]) -> Duration {
    let state = Arc::new(AppState::with_shards(shards));
    for &id in ids {
        state.add_survey(survey(id)).expect("bench survey");
    }
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let state = Arc::clone(&state);
            let barrier = Arc::clone(&barrier);
            let id = ids[t];
            let rel = releases(id);
            std::thread::spawn(move || {
                let batch: Vec<(String, Response)> = (0..SUBMITS_PER_THREAD)
                    .map(|i| {
                        let user = format!("t{t}-u{i}");
                        let mut r = Response::new(user.clone(), SurveyId(id));
                        r.answer(QuestionId(0), Answer::Obfuscated(4.0));
                        (user, r)
                    })
                    .collect();
                barrier.wait();
                for (user, r) in batch {
                    state
                        .submit(&user, PrivacyLevel::Medium, r, &rel)
                        .expect("bench submission");
                }
            })
        })
        .collect();
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("bench thread");
    }
    start.elapsed()
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    banner(
        "SHARD-1",
        "submit throughput vs store shard count, 8 submitter threads",
        "disjoint surveys must not contend (>=3x aggregate at 8 shards)",
    );
    let ids = disjoint_survey_ids();
    println!(
        "surveys: {ids:?} (distinct shards at {} shards)",
        SHARD_COUNTS[SHARD_COUNTS.len() - 1]
    );

    // Interleave shard counts within each trial so no variant owns the
    // warmer half of the run.
    let mut walls: Vec<Vec<Duration>> = vec![Vec::with_capacity(TRIALS); SHARD_COUNTS.len()];
    for _trial in 0..TRIALS {
        for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
            walls[i].push(run_trial(shards, &ids));
        }
    }

    let total = (THREADS * SUBMITS_PER_THREAD) as f64;
    let mut rates = Vec::with_capacity(SHARD_COUNTS.len());
    let mut t = Table::new(&["shards", "submits", "median wall ms", "submits/s"]);
    for (i, &shards) in SHARD_COUNTS.iter().enumerate() {
        let wall = median(&mut walls[i]);
        let rate = total / wall.as_secs_f64();
        t.row(&[
            n(shards),
            n(THREADS * SUBMITS_PER_THREAD),
            f(wall.as_secs_f64() * 1e3),
            f(rate),
        ]);
        rates.push((shards, wall, rate));
    }
    println!("{}", t.render());

    let base = rates[0].2;
    let top = rates[rates.len() - 1].2;
    let speedup = top / base;
    println!("SHARD-1 speedup at {THREADS} threads, 8 vs 1 shards: {speedup:.2}x");

    let bar: f64 = std::env::var("LOKI_SHARD1_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let pass = speedup >= bar;

    let results: Vec<serde_json::Value> = rates
        .iter()
        .map(|(shards, wall, rate)| {
            serde_json::json!({
                "shards": shards,
                "median_wall_ms": wall.as_secs_f64() * 1e3,
                "submits_per_sec": rate,
            })
        })
        .collect();
    let report = serde_json::json!({
        "bench": "SHARD-1",
        "threads": THREADS,
        "submits_per_thread": SUBMITS_PER_THREAD,
        "trials": TRIALS,
        "survey_ids": ids,
        "results": results,
        "speedup_top_vs_one": speedup,
        "min_required": bar,
        "pass": pass,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_SHARD1.json", json).expect("write BENCH_SHARD1.json");
    println!("wrote BENCH_SHARD1.json");

    if pass {
        println!("PASS: >= {bar:.1}x");
    } else {
        println!("FAIL: below the {bar:.1}x bar");
        std::process::exit(1);
    }
}
