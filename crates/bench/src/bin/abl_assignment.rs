//! Ablation — accuracy-constrained level assignment.
//!
//! Compares three ways of running a 20-survey campaign (target SE 0.25
//! per survey, 150-user pool):
//!
//! 1. **status quo** — users self-select levels with the paper's uptake
//!    mix, whole pool invited;
//! 2. **balancer** — least-loss user selection at a fixed medium level
//!    (EXP-6's strategy);
//! 3. **assigner** — the min-max optimizer picks both users *and*
//!    levels, subject to the same accuracy target.
//!
//! The figure of merit is the worst user's cumulative ε after the
//! campaign, given every policy met the same accuracy bar.

use loki_bench::{banner, f, seed_from_args, Table};
use loki_core::assignment::{Assigner, Candidate};
use loki_core::ledger::{AllocationStrategy, BudgetBalancer};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::{Accountant, ReleaseKind};
use loki_dp::params::Delta;
use loki_dp::utility;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

const POOL: usize = 150;
const SURVEYS: usize = 20;
const TARGET_SE: f64 = 0.25;
const POP_STD: f64 = 0.8;

fn users() -> Vec<String> {
    (0..POOL).map(|i| format!("u{i:03}")).collect()
}

fn release(level: PrivacyLevel) -> ReleaseKind {
    if level == PrivacyLevel::None {
        ReleaseKind::Raw
    } else {
        ReleaseKind::Gaussian {
            sigma: level.sigma(),
            sensitivity: 4.0,
        }
    }
}

fn max_eps(acc: &Accountant, users: &[String]) -> f64 {
    let delta = Delta::new(loki_dp::DEFAULT_DELTA);
    users
        .iter()
        .map(|u| acc.loss_of(u, delta).epsilon.value())
        .fold(0.0, f64::max)
}

/// How many users at the paper's self-selected mix meet the target SE.
fn status_quo_needed() -> usize {
    // Mix fractions 18/32/51/30 of 131; compute per-user average precision.
    let mix = [
        (PrivacyLevel::None, 18.0),
        (PrivacyLevel::Low, 32.0),
        (PrivacyLevel::Medium, 51.0),
        (PrivacyLevel::High, 30.0),
    ];
    let avg_precision: f64 = mix
        .iter()
        .map(|&(l, w)| w / 131.0 / (POP_STD * POP_STD + l.sigma() * l.sigma()))
        .sum();
    ((1.0 / (TARGET_SE * TARGET_SE)) / avg_precision).ceil() as usize
}

fn main() {
    let seed = seed_from_args(15);
    banner(
        "ABL-ASSIGNMENT",
        "who pays for accuracy: self-selection vs balancer vs optimizer",
        "balance loss across the user base while ensuring sufficient accuracy (§3.1)",
    );

    let us = users();
    let delta = Delta::new(loki_dp::DEFAULT_DELTA);
    let mut table = Table::new(&["policy", "max eps", "mean eps", "achieved se (worst)"]);

    // 1. Status quo: random subset at the self-selected mix.
    {
        let acc = Accountant::new();
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        let needed = status_quo_needed();
        let mut worst_se = 0.0f64;
        for round in 0..SURVEYS {
            let mut pool: Vec<&String> = us.iter().collect();
            pool.shuffle(&mut rng);
            let mut precision = 0.0;
            for (i, user) in pool.into_iter().take(needed).enumerate() {
                // Self-selected level, paper's mix by position.
                let level = match i * 131 / needed {
                    x if x < 18 => PrivacyLevel::None,
                    x if x < 50 => PrivacyLevel::Low,
                    x if x < 101 => PrivacyLevel::Medium,
                    _ => PrivacyLevel::High,
                };
                acc.record(user, format!("s{round}"), release(level));
                precision += 1.0 / (POP_STD * POP_STD + level.sigma() * level.sigma());
            }
            worst_se = worst_se.max((1.0 / precision).sqrt());
        }
        let mean = us
            .iter()
            .map(|u| acc.loss_of(u, delta).epsilon.value())
            .filter(|e| e.is_finite())
            .sum::<f64>()
            / us.len() as f64;
        let max = max_eps(&acc, &us);
        table.row(&[
            "self-selection (paper mix)".into(),
            if max.is_infinite() { "inf (none-bin)".into() } else { f(max) },
            f(mean),
            f(worst_se),
        ]);
    }

    // 2. Least-loss balancer at fixed Medium.
    {
        let acc = Accountant::new();
        let balancer = BudgetBalancer::new(AllocationStrategy::LeastLoss);
        let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 1);
        let needed = utility::required_sample_size(POP_STD, PrivacyLevel::Medium.sigma(), TARGET_SE);
        let mut worst_se = 0.0f64;
        for round in 0..SURVEYS {
            let picked = balancer.select(&mut rng, &acc, &us, needed.min(us.len()));
            for user in &picked {
                acc.record(user, format!("s{round}"), release(PrivacyLevel::Medium));
            }
            worst_se = worst_se.max(utility::mean_standard_error(
                POP_STD,
                PrivacyLevel::Medium.sigma(),
                picked.len(),
            ));
        }
        let mean = us
            .iter()
            .map(|u| acc.loss_of(u, delta).epsilon.value())
            .sum::<f64>()
            / us.len() as f64;
        table.row(&[
            "least-loss balancer @ medium".into(),
            f(max_eps(&acc, &us)),
            f(mean),
            f(worst_se),
        ]);
    }

    // 3. The optimizer.
    {
        let acc = Accountant::new();
        let mut worst_se = 0.0f64;
        let assigner = Assigner::new(POP_STD, 4.0);
        for round in 0..SURVEYS {
            let candidates: Vec<Candidate> = us
                .iter()
                .map(|u| Candidate {
                    id: u.clone(),
                    current_epsilon: acc.loss_of(u, delta).epsilon.value(),
                })
                .collect();
            let plan = assigner
                .plan(&candidates, TARGET_SE)
                .expect("pool large enough");
            for a in &plan.assignments {
                acc.record(&a.id, format!("s{round}"), release(a.level));
            }
            worst_se = worst_se.max(plan.predicted_se);
        }
        let mean = us
            .iter()
            .map(|u| acc.loss_of(u, delta).epsilon.value())
            .sum::<f64>()
            / us.len() as f64;
        table.row(&[
            "min-max assigner".into(),
            f(max_eps(&acc, &us)),
            f(mean),
            f(worst_se),
        ]);
    }

    println!("{}", table.render());
    println!(
        "all three meet SE ≤ {TARGET_SE}; the optimizer spends levels deliberately, so the\n\
         worst-off user ends far below the self-selection outcome (where the none-bin\n\
         users carry unbounded loss) and below the fixed-level balancer."
    );
}
