//! SLO-1 — self-scrape cost of the metrics history layer.
//!
//! The history layer ([`loki_obs::Tsdb`] + [`loki_obs::SloEngine`]) is
//! fed by a background thread that, once per interval, snapshots every
//! registered metric family straight from its atomic cells, ingests the
//! snapshot into the ring-buffer tsdb, and evaluates every SLO burn-rate
//! rule. That whole scrape must be cheap enough to be invisible next to
//! the serving path: at the production 1 s interval its duty cycle — the
//! fraction of each second the scrape occupies — must stay **below 1%**
//! of the submit path's capacity.
//!
//! This bench populates a realistic state (surveys, submissions, traffic
//! across every instrument family), measures the median cost of one full
//! scrape (`ServerMetrics::scrape`: ledger-gauge refresh + registry
//! snapshot + tsdb ingest + SLO evaluation) and the median cost of one
//! submit, and reports the scrape's duty cycle at 1 Hz both in absolute
//! terms and in equivalent submits forgone per second. The acceptance
//! bar (asserted in CI) is `scrape_seconds / 1 s < 1%`; override the
//! maximum duty-cycle percentage with `LOKI_SLO1_MIN` (e.g. on a
//! heavily-shared CI host).

use loki_bench::{banner, f, n, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_server::store::AppState;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::time::{Duration, Instant};

/// Ledger population the scrape has to walk for the near-cap gauge.
const USERS: usize = 2_000;
/// Scrapes per trial batch.
const SCRAPES: usize = 200;
/// Submits per trial batch for the per-submit cost.
const SUBMITS: usize = 2_000;
const TRIALS: usize = 11;

fn survey() -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "bench");
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

fn releases() -> Vec<(String, ReleaseKind)> {
    vec![(
        "survey-1/q0".into(),
        ReleaseKind::Gaussian {
            sigma: 1.0,
            sensitivity: 4.0,
        },
    )]
}

/// A state with metrics enabled, an ε cap (so the near-cap gauge has
/// real work to do), and `USERS` charged ledger entries.
fn populated_state() -> AppState {
    let state = AppState::new();
    state.add_survey(survey()).unwrap();
    state.enable_metrics();
    state.set_epsilon_budget(Some(1_000.0)).expect("positive cap");
    let rel = releases();
    for i in 0..USERS {
        let user = format!("u{i}");
        let mut r = Response::new(user.clone(), SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(4.0));
        state
            .submit(&user, PrivacyLevel::Medium, r, &rel)
            .expect("bench submission");
    }
    state
}

fn median(samples: &mut [Duration]) -> Duration {
    samples.sort();
    samples[samples.len() / 2]
}

fn main() {
    banner(
        "SLO-1",
        "self-scrape duty cycle of the metrics history layer",
        "tsdb + SLO scrape at 1 Hz must cost <1% of submit-path capacity",
    );

    let state = populated_state();
    let metrics = state.enable_metrics();

    // Interleave trials so neither side benefits from cache warm-up.
    let mut scrape_meds = Vec::with_capacity(TRIALS);
    let mut submit_meds = Vec::with_capacity(TRIALS);
    for trial in 0..TRIALS {
        let start = Instant::now();
        for _ in 0..SCRAPES {
            state.scrape_once();
        }
        scrape_meds.push(start.elapsed() / SCRAPES as u32);

        // Fresh users each trial: distinct ledger rows, never duplicates.
        let rel = releases();
        let start = Instant::now();
        for i in 0..SUBMITS {
            let user = format!("t{trial}-s{i}");
            let mut r = Response::new(user.clone(), SurveyId(1));
            r.answer(QuestionId(0), Answer::Obfuscated(4.0));
            state
                .submit(&user, PrivacyLevel::Medium, r, &rel)
                .expect("bench submission");
        }
        submit_meds.push(start.elapsed() / SUBMITS as u32);
    }
    let scrape_ns = median(&mut scrape_meds).as_nanos() as f64;
    let submit_ns = median(&mut submit_meds).as_nanos() as f64;

    // Duty cycle at the production cadence: one scrape per second.
    let duty_pct = scrape_ns / 1e9 * 100.0;
    let submits_forgone = scrape_ns / submit_ns;
    let series = metrics.tsdb().series_count();

    let mut t = Table::new(&["quantity", "value"]);
    t.row(&[
        "ledger rows walked per scrape".into(),
        n(state.accountant.user_count()),
    ]);
    t.row(&["tsdb series maintained".into(), n(series)]);
    t.row(&["median scrape cost (µs)".into(), f(scrape_ns / 1e3)]);
    t.row(&["median submit cost (µs)".into(), f(submit_ns / 1e3)]);
    t.row(&["duty cycle at 1 Hz (%)".into(), f(duty_pct)]);
    t.row(&["equiv. submits forgone /s".into(), f(submits_forgone)]);
    println!("{}", t.render());

    assert!(
        metrics.scrapes() >= (TRIALS * SCRAPES) as u64,
        "every scrape ticked the history layer"
    );
    assert!(series > 0, "scrapes populated the tsdb");

    let bar: f64 = std::env::var("LOKI_SLO1_MIN")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    println!("SLO-1 duty cycle at 1 Hz: {duty_pct:.4}% (bar <{bar}%)");
    if duty_pct < bar {
        println!("PASS: self-scrape is invisible next to the submit path");
    } else {
        println!("FAIL: scrape duty cycle above the {bar}% bar");
        std::process::exit(1);
    }
}
