//! Ablation — privacy erosion survey by survey.
//!
//! The paper's attack works because each survey leaks a *fragment*; this
//! ablation quantifies how the attacker's candidate set collapses as the
//! campaign progresses: everyone → birthday cohort → +gender/year →
//! +ZIP ≈ unique. The paper's §2 narrative, turned into a table.

use loki_attack::population::{Population, PopulationConfig};
use loki_attack::registry::Registry;
use loki_attack::Linker;
use loki_bench::{banner, f, n, seed_from_args, Table};
use loki_platform::behavior::BehaviorModel;
use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
use loki_platform::spec::paper_surveys;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    let seed = seed_from_args(11);
    banner(
        "ABL-EROSION",
        "attacker candidate-set size after each survey",
        "each innocuous survey shrinks the anonymity set until the ZIP makes it ~1",
    );

    let pop = Population::synthesize(
        PopulationConfig::default(),
        &mut ChaCha20Rng::seed_from_u64(seed),
    );
    let registry = Registry::from_population(&pop, 1.0);
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 1);
    let workers = pop.sample_workers(300, &mut rng, |_, _| BehaviorModel::Honest {
        opinion_noise: 0.3,
    });
    let mut market = Marketplace::new(
        MarketplaceConfig {
            acceptance_prob: 1.0,
            ..MarketplaceConfig::default()
        },
        workers,
        seed ^ 2,
    );

    let specs = paper_surveys();
    let mut linker = Linker::new();
    let mut table = Table::new(&[
        "after survey",
        "fragments",
        "median candidates",
        "mean candidates",
        "unique (=1)",
    ]);
    let stages = [
        ("(none)", "-"),
        ("1: astrology", "day+month"),
        ("2: match-making", "+gender+year"),
        ("3: phone coverage", "+ZIP"),
    ];
    // Stage 0: no information.
    table.row(&[
        stages[0].0.to_string(),
        stages[0].1.to_string(),
        n(pop.len()),
        f(pop.len() as f64),
        n(0),
    ]);
    for (i, spec) in specs[..3].iter().enumerate() {
        let outcome = market.post_task(spec, 300);
        linker.ingest(spec, &outcome.responses);
        let mut counts: Vec<usize> = linker
            .dossiers()
            .values()
            .map(|d| registry.candidate_count(&d.profile))
            .collect();
        counts.sort_unstable();
        let median = counts[counts.len() / 2];
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        let unique = counts.iter().filter(|&&c| c == 1).count();
        table.row(&[
            stages[i + 1].0.to_string(),
            stages[i + 1].1.to_string(),
            n(median),
            f(mean),
            n(unique),
        ]);
    }
    println!("{}", table.render());
    println!(
        "population {}; each row is the median/mean size of the anonymity set an attacker\n\
         holds per worker. The final row's 'unique' column is the paper's de-anonymized pool.",
        pop.len()
    );
}
