//! AGG-1 — estimate-read latency vs stored submission count.
//!
//! The streaming aggregation layer folds per-bin sufficient statistics
//! into the shard apply step, so an estimate read is an O(bins) merge of
//! per-shard state — its cost must not grow with the number of stored
//! submissions. The legacy path rescans every submission on every read.
//! This bench pins the contrast: p99 read latency of the streaming
//! estimate (`/v1/surveys/{id}/estimate/{q}`'s store call) against the
//! scan-backed results call, at 1k → 10k → 100k stored submissions.
//!
//! Acceptance: streaming p99 at 100k submissions must stay within
//! **3×** of its 1k baseline (flat modulo scheduler noise, while the
//! scan baseline grows ~100×). Override the bar with `LOKI_AGG1_MAX`.
//! Writes the machine-readable result to `BENCH_AGG1.json` (CI uploads
//! it as an artifact next to the other perf trajectories).

use loki_bench::{banner, f, n, Table};
use loki_core::estimator::Estimator;
use loki_core::privacy_level::PrivacyLevel;
use loki_server::store::AppState;
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::time::{Duration, Instant};

const POPULATIONS: [usize; 3] = [1_000, 10_000, 100_000];
const READS: usize = 512;

const LEVELS: [PrivacyLevel; 4] =
    [PrivacyLevel::None, PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High];

fn survey(id: u64) -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(id), format!("bench-{id}"));
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

/// Builds an 8-shard in-memory state holding `population` submissions
/// to one survey, spread across all privacy bins with non-trivial
/// mantissas (so the estimator does real work on every read).
fn build(population: usize) -> AppState {
    let state = AppState::with_shards(8);
    state.add_survey(survey(1)).expect("bench survey");
    for i in 0..population {
        let user = format!("u{i}");
        let mut r = Response::new(user.clone(), SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(1.0 + (i % 4001) as f64 / 1000.0));
        state
            .submit(&user, LEVELS[i % LEVELS.len()], r, &[])
            .expect("bench submission");
    }
    state
}

fn p99(latencies: &mut [Duration]) -> Duration {
    latencies.sort();
    latencies[(latencies.len() * 99) / 100 - 1]
}

/// Times `READS` calls of `read`, returning the p99 single-call latency.
fn measure(mut read: impl FnMut() -> u64) -> Duration {
    let mut latencies = Vec::with_capacity(READS);
    let mut sink = 0u64;
    for _ in 0..READS {
        let start = Instant::now();
        sink = sink.wrapping_add(read());
        latencies.push(start.elapsed());
    }
    assert!(sink > 0, "reads must observe real data");
    p99(&mut latencies)
}

fn main() {
    banner(
        "AGG-1",
        "estimate-read p99 vs stored submissions: streaming vs rescan",
        "streaming p99 must stay flat 1k -> 100k (<=3x, override LOKI_AGG1_MAX)",
    );
    let estimator = Estimator::default();

    let mut t = Table::new(&["submissions", "streaming p99 us", "scan p99 us", "scan/stream"]);
    let mut rows = Vec::with_capacity(POPULATIONS.len());
    for &population in &POPULATIONS {
        let state = build(population);
        let streaming = measure(|| {
            state
                .streaming_results(SurveyId(1), QuestionId(0), &estimator)
                .map_or(0, |p| p.n_total as u64)
        });
        let scan = measure(|| {
            state
                .results(SurveyId(1), QuestionId(0), &estimator)
                .map_or(0, |p| p.n_total as u64)
        });
        let ratio = scan.as_secs_f64() / streaming.as_secs_f64();
        t.row(&[
            n(population),
            f(streaming.as_secs_f64() * 1e6),
            f(scan.as_secs_f64() * 1e6),
            f(ratio),
        ]);
        rows.push((population, streaming, scan));
    }
    println!("{}", t.render());

    let base = rows[0].1.as_secs_f64();
    let top = rows[rows.len() - 1].1.as_secs_f64();
    let growth = top / base;
    println!(
        "AGG-1 streaming p99 growth {}k -> {}k submissions: {growth:.2}x",
        POPULATIONS[0] / 1000,
        POPULATIONS[POPULATIONS.len() - 1] / 1000
    );

    let bar: f64 = std::env::var("LOKI_AGG1_MAX")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3.0);
    let pass = growth <= bar;

    let results: Vec<serde_json::Value> = rows
        .iter()
        .map(|(population, streaming, scan)| {
            serde_json::json!({
                "submissions": population,
                "streaming_p99_us": streaming.as_secs_f64() * 1e6,
                "scan_p99_us": scan.as_secs_f64() * 1e6,
            })
        })
        .collect();
    let report = serde_json::json!({
        "bench": "AGG-1",
        "reads": READS,
        "results": results,
        "streaming_p99_growth": growth,
        "max_allowed": bar,
        "pass": pass,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_AGG1.json", json).expect("write BENCH_AGG1.json");
    println!("wrote BENCH_AGG1.json");

    if pass {
        println!("PASS: <= {bar:.1}x");
    } else {
        println!("FAIL: above the {bar:.1}x bar");
        std::process::exit(1);
    }
}
