//! EXP-3 — Fig. 2: per-bin mean deviation for 13 lecturers + rater
//! histogram.
//!
//! Paper setup: 131 volunteers rating 13 lecturers; privacy-bin uptake
//! 18 none / 32 low / 51 medium / 30 high. The figure plots, for each
//! lecturer, the difference between each bin's mean and the overall mean
//! (y ∈ roughly ±2 for the smallest/noisiest bins) plus a histogram of
//! raters per bin.

use loki_bench::{banner, f, seed_from_args, Table};
use loki_core::figure2::Figure2;
use loki_core::privacy_level::PrivacyLevel;
use loki_core::trial::{Trial, TrialConfig};

fn main() {
    let seed = seed_from_args(0x10C4);
    banner(
        "EXP-3",
        "Fig. 2 — variation in mean across privacy bins, per lecturer",
        "deviation grows with privacy level and shrinks with bin size; n=131 (18/32/51/30)",
    );

    let trial = Trial::generate(TrialConfig {
        seed,
        ..TrialConfig::default()
    });
    let figure = Figure2::from_trial(&trial);

    // `--csv PATH` writes the figure's data for external plotting.
    let args: Vec<String> = std::env::args().collect();
    if let Some(path) = args.windows(2).find(|w| w[0] == "--csv").map(|w| &w[1]) {
        std::fs::write(path, figure.to_csv()).expect("write csv");
        println!("wrote {path}");
    }

    println!(
        "trial: {} students over {} lecturers, bins 18/32/51/30\n",
        trial.student_count(),
        trial.lecturer_count()
    );
    print!("{}", figure.render());

    // Summary series: mean |deviation| per bin — the figure's headline.
    let mad = figure.mean_abs_deviation();
    let mut t = Table::new(&["privacy bin", "sigma", "mean |deviation|"]);
    for level in PrivacyLevel::ALL {
        t.row(&[
            level.to_string(),
            f(level.sigma()),
            f(*mad.get(&level).unwrap_or(&0.0)),
        ]);
    }
    println!("\n{}", t.render());

    // The paper's qualitative claim, checked numerically over many seeds.
    let mut none_low = 0.0;
    let mut high = 0.0;
    let runs = 50;
    for s in 0..runs {
        let fig = Figure2::from_trial(&Trial::generate(TrialConfig {
            seed: seed.wrapping_add(s),
            ..TrialConfig::default()
        }));
        let m = fig.mean_abs_deviation();
        none_low += m[&PrivacyLevel::Low];
        high += m[&PrivacyLevel::High];
    }
    println!(
        "over {runs} seeds: mean|dev| low bin {:.3} vs high bin {:.3} ({}x)",
        none_low / runs as f64,
        high / runs as f64,
        (high / none_low * 10.0).round() / 10.0
    );
    println!("shape check: high-privacy bins deviate several times more, as in Fig. 2.");
}
