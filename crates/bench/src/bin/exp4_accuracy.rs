//! EXP-4 — §3.2's accuracy anecdote.
//!
//! Paper: one author's pooled noisy estimate was 4.72 against a
//! trusted-third-party ground truth of 4.61 (|error| = 0.11) at n ≈ 131
//! with the empirical bin mix. This binary measures the full error
//! distribution of the pooled estimator in that regime.

use loki_bench::{banner, f, seed_from_args, Table};
use loki_core::estimator::Estimator;
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::sampling;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;

fn main() {
    let seed = seed_from_args(461);
    banner(
        "EXP-4",
        "pooled-estimate accuracy at the trial's scale",
        "noisy estimate 4.72 vs true 4.61 (|err| = 0.11) at n=131, bins 18/32/51/30",
    );

    let truth = 4.61;
    let pop_std = 0.5; // rater spread around a well-liked lecturer
    let bins_spec: [(PrivacyLevel, usize); 4] = [
        (PrivacyLevel::None, 18),
        (PrivacyLevel::Low, 32),
        (PrivacyLevel::Medium, 51),
        (PrivacyLevel::High, 30),
    ];
    let estimator = Estimator::new(pop_std);
    let mut rng = ChaCha20Rng::seed_from_u64(seed);

    let trials = 10_000;
    let mut errors = Vec::with_capacity(trials);
    for _ in 0..trials {
        let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
        for (level, count) in bins_spec {
            let samples = (0..count)
                .map(|_| {
                    let raw = sampling::gaussian(&mut rng, truth, pop_std).clamp(1.0, 5.0);
                    sampling::gaussian(&mut rng, raw.round(), level.sigma())
                })
                .collect();
            bins.insert(level, samples);
        }
        let pooled = estimator.pooled(&bins);
        errors.push(pooled.mean - truth);
    }

    errors.sort_by(f64::total_cmp);
    let mae = errors.iter().map(|e| e.abs()).sum::<f64>() / trials as f64;
    let rmse = (errors.iter().map(|e| e * e).sum::<f64>() / trials as f64).sqrt();
    let p_le_011 = errors.iter().filter(|e| e.abs() <= 0.11).count() as f64 / trials as f64;
    let p95 = errors[(trials as f64 * 0.975) as usize].abs();

    let mut t = Table::new(&["metric", "value"]);
    t.row(&["trials".into(), trials.to_string()]);
    t.row(&["mean |error|".into(), f(mae)]);
    t.row(&["rmse".into(), f(rmse)]);
    t.row(&["P(|error| <= 0.11)".into(), f(p_le_011)]);
    t.row(&["97.5th pct |error|".into(), f(p95)]);
    println!("{}", t.render());

    println!(
        "\nthe paper's observed |error| of 0.11 sits at the {:.0}th percentile of the\n\
         reproduced error distribution — i.e. an entirely typical draw.",
        errors.iter().filter(|e| e.abs() <= 0.11).count() as f64 / trials as f64 * 100.0
    );

    // Per-bin estimates of one representative draw, mirroring how the
    // author's score would have been read per bin.
    let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
    for (level, count) in bins_spec {
        let samples = (0..count)
            .map(|_| {
                let raw = sampling::gaussian(&mut rng, truth, pop_std).clamp(1.0, 5.0);
                sampling::gaussian(&mut rng, raw.round(), level.sigma())
            })
            .collect();
        bins.insert(level, samples);
    }
    let pooled = estimator.pooled(&bins);
    let mut bt = Table::new(&["bin", "n", "mean", "pred. std err"]);
    for b in &pooled.bins {
        bt.row(&[b.level.to_string(), b.n.to_string(), f(b.mean), f(b.standard_error)]);
    }
    bt.row(&[
        "pooled".into(),
        pooled.n_total.to_string(),
        f(pooled.mean),
        f(pooled.standard_error),
    ]);
    println!("\nrepresentative draw (truth {truth}):\n{}", bt.render());
}
