//! EXP-2 — §2's follow-up perception survey.
//!
//! Paper numbers: of 100 respondents, 73 did not know they could be
//! profiled and would not participate if they knew — including 15 of the
//! 18 workers whose respiratory health was exposed in EXP-1.

use loki_attack::inference::HealthInferenceRule;
use loki_attack::population::{Population, PopulationConfig};
use loki_attack::registry::Registry;
use loki_attack::reident::Reidentifier;
use loki_attack::Linker;
use loki_bench::{banner, n, seed_from_args, Table};
use loki_platform::behavior::BehaviorModel;
use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
use loki_platform::spec::{paper_surveys, QuestionSemantics};
use loki_survey::question::Answer;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::HashSet;

fn main() {
    let seed = seed_from_args(2013);
    banner(
        "EXP-2",
        "profiling-awareness follow-up survey",
        "100 respondents; 73 unaware & would not participate; incl. 15 of the 18 exposed",
    );

    // Same world and campaign as EXP-1 (same seed → same victims).
    let pop = Population::synthesize(
        PopulationConfig::default(),
        &mut ChaCha20Rng::seed_from_u64(seed),
    );
    let registry = Registry::from_population(&pop, 0.85);
    let mut rng = ChaCha20Rng::seed_from_u64(seed ^ 1);
    let workers = pop.sample_workers(450, &mut rng, |_, i| {
        if i % 12 == 0 {
            BehaviorModel::Random
        } else {
            BehaviorModel::Honest { opinion_noise: 0.3 }
        }
    });
    let mut market = Marketplace::new(MarketplaceConfig::default(), workers, seed ^ 2);

    let specs = paper_surveys();
    let mut linker = Linker::new();
    for (spec, quota) in specs[..4].iter().zip([400usize, 350, 300, 250]) {
        let outcome = market.post_task(spec, quota);
        linker.ingest(spec, &outcome.responses);
    }
    let (reids, _) = Reidentifier::new(&registry).run(&linker);
    let exposures = HealthInferenceRule::default().infer_all(&reids);
    let exposed_ids: HashSet<&str> = exposures.iter().map(|e| e.reported_id.as_str()).collect();

    // The perception survey (survey 5), quota 100.
    let spec5 = &specs[4];
    let outcome = market.post_task(spec5, 100);

    let aware_q = spec5
        .survey
        .questions
        .iter()
        .find(|q| {
            matches!(
                spec5.semantics_of(q.id),
                Some(QuestionSemantics::AwareOfProfiling)
            )
        })
        .expect("awareness question");
    let part_q = spec5
        .survey
        .questions
        .iter()
        .find(|q| {
            matches!(
                spec5.semantics_of(q.id),
                Some(QuestionSemantics::WouldParticipateIfProfiled)
            )
        })
        .expect("participation question");

    let mut unaware_and_unwilling = 0usize;
    let mut unaware = 0usize;
    let mut exposed_overlap = 0usize;
    for r in outcome.responses.iter() {
        // Choice 1 = "No" for both questions.
        let is_unaware = r.get(aware_q.id) == Some(&Answer::Choice(1));
        let wont = r.get(part_q.id) == Some(&Answer::Choice(1));
        if is_unaware {
            unaware += 1;
        }
        if is_unaware && wont {
            unaware_and_unwilling += 1;
            if exposed_ids.contains(r.worker.as_str()) {
                exposed_overlap += 1;
            }
        }
    }

    let mut t = Table::new(&["metric", "paper", "reproduced"]);
    t.row(&[
        "perception-survey respondents".into(),
        "100".into(),
        n(outcome.responses.len()),
    ]);
    t.row(&["unaware of profiling".into(), "-".into(), n(unaware)]);
    t.row(&[
        "unaware & would not participate".into(),
        "73".into(),
        n(unaware_and_unwilling),
    ]);
    t.row(&[
        "of whom health-exposed in EXP-1".into(),
        "15 of 18".into(),
        format!("{} of {}", exposed_overlap, exposures.len()),
    ]);
    println!("{}", t.render());

    println!(
        "note: awareness prevalence is a population parameter ({}%); the paper's 73%\n\
         unaware rate pins it — PopulationConfig::awareness_rate = 0.25 reproduces it.",
        (1.0 - pop.config().awareness_rate) * 100.0
    );
}
