//! NET-1 — connection scalability of the evented edge.
//!
//! The pre-reactor server parked one OS thread per connection, so open
//! sockets — even idle keep-alive ones — consumed stacks, and a few
//! thousand of them exhausted the worker pool. The reactor multiplexes
//! every connection onto a fixed set of epoll shards, so thread count is
//! a function of configuration alone. This bench holds that claim to a
//! sweep: ramp 1k → 10k idle keep-alive connections (each completes one
//! real `/v1/healthz` request, then sits parked), and at every step push
//! a mixed submit load through the full `/v1` stack while sampling the
//! process thread count and submit latency.
//!
//! Pass criteria: the thread count at 10k connections equals the thread
//! count at 1k (the C100K structural property), and submit p99 stays
//! under the bar while ~10k sockets idle in the slabs. Writes the
//! machine-readable result to `BENCH_NET1.json` (CI uploads it as an
//! artifact).
//!
//! Knobs for small runners: `LOKI_NET1_CONNS` caps the sweep's top step
//! (the fd rlimit is respected automatically — client and in-process
//! server ends both count against it), `LOKI_NET1_MAX_P99_MS` moves the
//! latency bar (default 250 ms).

use loki_bench::{banner, f, n, Table};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_net::server::{Server, ServerConfig, ServerHandle};
use loki_server::store::AppState;
use loki_server::{build_router, SubmitRequest};
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

const BASE_STEPS: [usize; 4] = [1000, 2500, 5000, 10_000];
const REACTOR_SHARDS: usize = 2;
const RAMP_THREADS: usize = 8;
const SUBMIT_THREADS: usize = 4;
const SUBMITS_PER_THREAD: usize = 250;

fn survey() -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "net1");
    b.question("rate", QuestionKind::likert5(), false);
    b.build().expect("static survey")
}

fn submit_body(user: &str) -> Vec<u8> {
    let mut response = Response::new(user, SurveyId(1));
    response.answer(QuestionId(0), Answer::Obfuscated(4.0));
    serde_json::to_vec(&SubmitRequest {
        user: user.into(),
        privacy_level: PrivacyLevel::Medium,
        response,
        releases: vec![(
            "survey-1/q0".into(),
            ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        )],
    })
    .expect("bench body serializes")
}

/// Current thread count of this process (server shards included — the
/// server runs in-process, which is exactly what makes the constancy
/// assertion meaningful). `None` off Linux.
fn process_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// Connections the fd rlimit can carry: each one burns a client fd and
/// an in-process server fd, plus headroom for transient submit sockets.
fn fd_budget() -> usize {
    let limits = std::fs::read_to_string("/proc/self/limits").unwrap_or_default();
    let soft = limits
        .lines()
        .find(|l| l.starts_with("Max open files"))
        .and_then(|l| l.split_whitespace().nth(3))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1024);
    soft.saturating_sub(128) / 2
}

/// Reads one complete HTTP response (headers + Content-Length body).
fn read_response(s: &mut TcpStream) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        let got = s.read(&mut chunk)?;
        if got == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "eof before headers",
            ));
        }
        buf.extend_from_slice(&chunk[..got]);
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos;
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).into_owned();
    let content_length: usize = head
        .lines()
        .find_map(|l| {
            let (name, value) = l.split_once(':')?;
            if name.eq_ignore_ascii_case("content-length") {
                value.trim().parse().ok()
            } else {
                None
            }
        })
        .unwrap_or(0);
    let mut remaining = content_length.saturating_sub(buf.len() - header_end - 4);
    while remaining > 0 {
        let got = s.read(&mut chunk)?;
        if got == 0 {
            break;
        }
        remaining -= got.min(remaining);
    }
    Ok(())
}

/// Opens one idle keep-alive connection: a full request round-trip, then
/// the socket parks in a reactor slab.
fn open_idle_conn(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(10)))?;
    s.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n")?;
    read_response(&mut s)?;
    Ok(s)
}

/// Ramps `count` idle connections with a small thread pool; returns the
/// held sockets (dropping them is what ends the step).
fn ramp_idle(addr: SocketAddr, count: usize) -> Vec<TcpStream> {
    let held = Arc::new(Mutex::new(Vec::with_capacity(count)));
    let threads: Vec<_> = (0..RAMP_THREADS)
        .map(|t| {
            let held = Arc::clone(&held);
            let share = count / RAMP_THREADS + usize::from(t < count % RAMP_THREADS);
            std::thread::spawn(move || {
                let mut mine = Vec::with_capacity(share);
                for _ in 0..share {
                    match open_idle_conn(addr) {
                        Ok(s) => mine.push(s),
                        Err(e) => {
                            eprintln!("ramp conn failed: {e}");
                            break;
                        }
                    }
                }
                held.lock().expect("ramp lock").append(&mut mine);
            })
        })
        .collect();
    for t in threads {
        t.join().expect("ramp thread");
    }
    Arc::try_unwrap(held)
        .expect("ramp threads joined")
        .into_inner()
        .expect("ramp lock")
}

/// Pushes the mixed submit load (one connection per request, the
/// client's posture) and returns every request's wall latency.
fn submit_storm(addr: SocketAddr, step: usize) -> Vec<Duration> {
    let barrier = Arc::new(Barrier::new(SUBMIT_THREADS));
    let threads: Vec<_> = (0..SUBMIT_THREADS)
        .map(|t| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let bodies: Vec<Vec<u8>> = (0..SUBMITS_PER_THREAD)
                    .map(|i| submit_body(&format!("net1-s{step}-t{t}-u{i}")))
                    .collect();
                barrier.wait();
                let mut latencies = Vec::with_capacity(bodies.len());
                for body in bodies {
                    let started = Instant::now();
                    let outcome = (|| -> std::io::Result<()> {
                        let mut s = TcpStream::connect(addr)?;
                        s.set_read_timeout(Some(Duration::from_secs(10)))?;
                        let mut wire = Vec::with_capacity(256 + body.len());
                        wire.extend_from_slice(
                            b"POST /v1/surveys/1/responses HTTP/1.1\r\n\
                              Content-Type: application/json\r\n",
                        );
                        wire.extend_from_slice(
                            format!("Content-Length: {}\r\n", body.len()).as_bytes(),
                        );
                        wire.extend_from_slice(b"Connection: close\r\n\r\n");
                        wire.extend_from_slice(&body);
                        s.write_all(&wire)?;
                        read_response(&mut s)
                    })();
                    outcome.expect("bench submit");
                    latencies.push(started.elapsed());
                }
                latencies
            })
        })
        .collect();
    let mut all = Vec::with_capacity(SUBMIT_THREADS * SUBMITS_PER_THREAD);
    for t in threads {
        all.extend(t.join().expect("submit thread"));
    }
    all
}

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn spawn_server(top_step: usize) -> (ServerHandle, Arc<AppState>) {
    let state = Arc::new(AppState::new());
    state.add_survey(survey()).expect("bench survey");
    let config = ServerConfig {
        workers: REACTOR_SHARDS,
        // Per-shard cap: leave room for every idle conn to land on one
        // shard in the worst accept-race split, plus submit traffic.
        backlog: top_step + 256,
        read_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    };
    let handle =
        Server::spawn("127.0.0.1:0", build_router(Arc::clone(&state)), config).expect("bench server");
    (handle, state)
}

fn main() {
    banner(
        "NET-1",
        "idle keep-alive connection sweep + mixed submit load",
        "thread count must not grow with connections; submit p99 holds",
    );

    let cap_env: Option<usize> = std::env::var("LOKI_NET1_CONNS")
        .ok()
        .and_then(|v| v.parse().ok());
    let budget = fd_budget();
    let cap = cap_env.unwrap_or(usize::MAX).min(budget);
    let mut steps: Vec<usize> = BASE_STEPS.iter().copied().filter(|&s| s <= cap).collect();
    if steps.is_empty() {
        steps.push(cap.max(128));
    }
    println!(
        "fd budget {budget} conns (rlimit), env cap {:?} -> sweep {steps:?}",
        cap_env
    );

    let top = *steps.iter().max().expect("non-empty sweep");
    let (handle, _state) = spawn_server(top);
    let addr = handle.addr();
    let stats = handle.stats();
    println!(
        "server: {REACTOR_SHARDS} reactor shards at {addr}, backlog {} per shard",
        top + 256
    );

    let p99_bar_ms: f64 = std::env::var("LOKI_NET1_MAX_P99_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250.0);

    let mut rows = Vec::new();
    let mut table = Table::new(&[
        "idle conns",
        "ramp ms",
        "open (server)",
        "threads",
        "submit p50 ms",
        "submit p99 ms",
    ]);
    for &step in &steps {
        let ramp_started = Instant::now();
        let held = ramp_idle(addr, step);
        let ramp = ramp_started.elapsed();
        assert_eq!(held.len(), step, "ramp fell short at {step} conns");

        // The reactor's own accounting must see every parked socket.
        let open = stats.open_conns();
        assert!(
            open >= step as u64,
            "server counts {open} open conns, expected >= {step}"
        );

        let mut latencies = submit_storm(addr, step);
        latencies.sort();
        let p50 = percentile(&latencies, 0.50);
        let p99 = percentile(&latencies, 0.99);
        let threads = process_threads();

        table.row(&[
            n(step),
            f(ramp.as_secs_f64() * 1e3),
            n(open as usize),
            threads.map_or_else(|| "n/a".to_string(), n),
            f(p50.as_secs_f64() * 1e3),
            f(p99.as_secs_f64() * 1e3),
        ]);
        rows.push((step, ramp, open, threads, p50, p99));
        drop(held);
        // Let the reactors reap the dropped sockets before the next ramp.
        let deadline = Instant::now() + Duration::from_secs(10);
        while stats.open_conns() > 64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
    println!("{}", table.render());

    let thread_samples: Vec<u64> = rows.iter().filter_map(|r| r.3).collect();
    let threads_constant = thread_samples.windows(2).all(|w| w[0] == w[1]);
    let worst_p99 = rows
        .iter()
        .map(|r| r.5)
        .max()
        .unwrap_or(Duration::ZERO)
        .as_secs_f64()
        * 1e3;
    let p99_ok = worst_p99 <= p99_bar_ms;
    let pass = threads_constant && p99_ok;

    println!(
        "threads across sweep: {thread_samples:?} ({})",
        if threads_constant { "constant" } else { "GREW" }
    );
    println!("worst submit p99: {worst_p99:.2} ms (bar {p99_bar_ms:.0} ms)");

    let results: Vec<serde_json::Value> = rows
        .iter()
        .map(|(step, ramp, open, threads, p50, p99)| {
            serde_json::json!({
                "idle_conns": step,
                "ramp_ms": ramp.as_secs_f64() * 1e3,
                "server_open_conns": open,
                "process_threads": threads,
                "submit_p50_ms": p50.as_secs_f64() * 1e3,
                "submit_p99_ms": p99.as_secs_f64() * 1e3,
            })
        })
        .collect();
    let report = serde_json::json!({
        "bench": "NET-1",
        "reactor_shards": REACTOR_SHARDS,
        "submit_threads": SUBMIT_THREADS,
        "submits_per_thread": SUBMITS_PER_THREAD,
        "fd_budget": budget,
        "steps": steps,
        "results": results,
        "threads_constant": threads_constant,
        "worst_p99_ms": worst_p99,
        "p99_bar_ms": p99_bar_ms,
        "pass": pass,
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_NET1.json", json).expect("write BENCH_NET1.json");
    println!("wrote BENCH_NET1.json");

    handle.shutdown();
    if pass {
        println!("PASS: threads constant, p99 under {p99_bar_ms:.0} ms");
    } else {
        println!("FAIL: thread growth or p99 over the bar");
        std::process::exit(1);
    }
}
