//! EXP-9c — end-to-end platform benchmarks over real sockets: the full
//! submit round-trip (client-side obfuscation → HTTP → validation →
//! store → ledger) and the results query, plus the marketplace
//! simulator's campaign throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use loki_client::LokiClient;
use loki_core::privacy_level::PrivacyLevel;
use loki_platform::behavior::BehaviorModel;
use loki_platform::marketplace::{Marketplace, MarketplaceConfig};
use loki_platform::spec::paper_surveys;
use loki_platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
use loki_server::{serve, AppState};
use loki_survey::demographics::{BirthDate, Gender, QuasiIdentifier, ZipCode};
use loki_survey::question::{Answer, QuestionKind};
use loki_survey::survey::{SurveyBuilder, SurveyId};
use loki_survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;

fn bench_submit_roundtrip(c: &mut Criterion) {
    let state = Arc::new(AppState::new());
    let mut b = SurveyBuilder::new(SurveyId(1), "bench");
    b.question("rate", QuestionKind::likert5(), false);
    let survey = b.build().unwrap();
    state.add_survey(survey.clone()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let base = handle.base_url();

    let mut rng = ChaCha20Rng::seed_from_u64(1);
    let mut answers = BTreeMap::new();
    answers.insert(QuestionId(0), Answer::Rating(4.0));

    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(50);
    let mut i = 0u64;
    g.bench_function("submit_roundtrip", |bch| {
        bch.iter(|| {
            // Fresh user each iteration (duplicates are rejected).
            i += 1;
            let mut client = LokiClient::connect(&base, format!("bench-user-{i}")).unwrap();
            black_box(
                client
                    .submit(&mut rng, &survey, &answers, PrivacyLevel::Medium)
                    .unwrap(),
            )
        })
    });

    let http = loki_net::client::HttpClient::new(&base).unwrap();
    g.bench_function("results_query", |bch| {
        bch.iter(|| black_box(http.get("/surveys/1/results/0").unwrap()))
    });
    g.finish();
    handle.shutdown();
}

fn bench_marketplace(c: &mut Criterion) {
    let mut g = c.benchmark_group("marketplace");
    g.sample_size(20);
    let specs = paper_surveys();
    g.bench_function("campaign_100_workers_survey1", |bch| {
        bch.iter(|| {
            let workers: Vec<(WorkerProfile, BehaviorModel)> = (0..100u64)
                .map(|i| {
                    (
                        WorkerProfile::new(
                            WorkerId(i),
                            QuasiIdentifier {
                                birth: BirthDate::new(
                                    1970 + (i % 30) as u16,
                                    1 + (i % 12) as u8,
                                    1 + (i % 28) as u8,
                                )
                                .unwrap(),
                                gender: if i % 2 == 0 {
                                    Gender::Female
                                } else {
                                    Gender::Male
                                },
                                zip: ZipCode::new(10_000 + i as u32).unwrap(),
                            },
                            HealthProfile {
                                smoking_level: 1 + (i % 5) as u8,
                                cough_level: 1 + (i % 5) as u8,
                            },
                            PrivacyAttitude {
                                aware_of_profiling: false,
                                would_participate_if_profiled: false,
                            },
                        ),
                        BehaviorModel::Honest { opinion_noise: 0.3 },
                    )
                })
                .collect();
            let mut market = Marketplace::new(MarketplaceConfig::default(), workers, 7);
            black_box(market.post_task(&specs[0], 100))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_submit_roundtrip, bench_marketplace);
criterion_main!(benches);
