//! EXP-9a — Criterion microbenchmarks of the DP substrate: noise
//! sampling, mechanism calibration, randomized response, and ledger
//! accounting. These bound the per-response CPU cost of Loki's at-source
//! obfuscation (it must be negligible on a phone-class core).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use loki_core::obfuscate::Obfuscator;
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::{ReleaseKind, UserLedger};
use loki_dp::mechanisms::gaussian::GaussianMechanism;
use loki_dp::mechanisms::randomized_response::RandomizedResponse;
use loki_dp::mechanisms::Mechanism;
use loki_dp::params::{Delta, Epsilon};
use loki_dp::sampling;
use loki_dp::Sensitivity;
use loki_survey::question::{Answer, Question, QuestionKind};
use loki_survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    let mut rng = ChaCha20Rng::seed_from_u64(1);
    g.bench_function("standard_normal", |b| {
        b.iter(|| black_box(sampling::standard_normal(&mut rng)))
    });
    let mut rng2 = ChaCha20Rng::seed_from_u64(2);
    g.bench_function("gaussian", |b| {
        b.iter(|| black_box(sampling::gaussian(&mut rng2, 3.0, 1.0)))
    });
    let mut rng3 = ChaCha20Rng::seed_from_u64(3);
    g.bench_function("laplace", |b| {
        b.iter(|| black_box(sampling::laplace(&mut rng3, 3.0, 1.0)))
    });
    g.finish();
}

fn bench_calibration(c: &mut Criterion) {
    let mut g = c.benchmark_group("calibration");
    let sens = Sensitivity::new(4.0);
    let delta = Delta::new(1e-5);
    g.bench_function("analytic_sigma_from_eps", |b| {
        b.iter(|| {
            black_box(GaussianMechanism::calibrate_analytic(
                sens,
                Epsilon::new(1.0),
                delta,
            ))
        })
    });
    let mech = GaussianMechanism::from_sigma(1.0, sens, delta);
    g.bench_function("analytic_eps_from_sigma", |b| {
        b.iter(|| black_box(mech.epsilon()))
    });
    g.finish();
}

fn bench_release(c: &mut Criterion) {
    let mut g = c.benchmark_group("release");
    let mut rng = ChaCha20Rng::seed_from_u64(2);
    let mech = GaussianMechanism::with_sigma(1.0);
    g.bench_function("gaussian_release", |b| {
        b.iter(|| black_box(mech.release(&mut rng, 4.0)))
    });
    let mut rng2 = ChaCha20Rng::seed_from_u64(3);
    let rr = RandomizedResponse::new(5, Epsilon::new(2.0));
    g.bench_function("randomized_response_perturb", |b| {
        b.iter(|| black_box(rr.perturb(&mut rng2, 2)))
    });
    let q = Question {
        id: QuestionId(0),
        text: "rate".into(),
        kind: QuestionKind::likert5(),
        sensitive: false,
    };
    let mut rng3 = ChaCha20Rng::seed_from_u64(4);
    let obf = Obfuscator::new(PrivacyLevel::Medium);
    g.bench_function("obfuscate_rating_answer", |b| {
        b.iter(|| {
            black_box(
                obf.obfuscate_answer(&mut rng3, &q, &Answer::Rating(4.0))
                    .unwrap(),
            )
        })
    });
    g.finish();
}

fn bench_accounting(c: &mut Criterion) {
    let mut g = c.benchmark_group("accounting");
    g.bench_function("ledger_record_gaussian", |b| {
        b.iter_batched(
            UserLedger::new,
            |mut ledger| {
                ledger.record(
                    "s/q",
                    ReleaseKind::Gaussian {
                        sigma: 1.0,
                        sensitivity: 4.0,
                    },
                );
                black_box(ledger)
            },
            BatchSize::SmallInput,
        )
    });
    let mut big = UserLedger::new();
    for i in 0..200 {
        big.record(
            format!("s{i}"),
            ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        );
    }
    g.bench_function("tight_loss_200_releases", |b| {
        b.iter(|| black_box(big.tight_loss(Delta::new(1e-5))))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sampling,
    bench_calibration,
    bench_release,
    bench_accounting
);
criterion_main!(benches);
