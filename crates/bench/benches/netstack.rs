//! EXP-9b — Criterion microbenchmarks of the HTTP substrate: request
//! parsing, router dispatch and response serialization. These are the
//! per-request costs of the Django-substitute backend.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use loki_net::http::{Method, Request, Response, StatusCode};
use loki_net::parser::RequestParser;
use loki_net::router::Router;
use std::hint::black_box;

fn request_bytes(body_len: usize) -> Vec<u8> {
    let body = "x".repeat(body_len);
    format!(
        "POST /surveys/7/responses HTTP/1.1\r\nHost: loki\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("http_parse");
    for body_len in [0usize, 256, 4096] {
        let wire = request_bytes(body_len);
        g.throughput(Throughput::Bytes(wire.len() as u64));
        g.bench_function(format!("parse_request_{body_len}B_body"), |b| {
            let parser = RequestParser::default();
            b.iter(|| {
                let mut buf = BytesMut::from(&wire[..]);
                black_box(parser.parse(&mut buf).unwrap().unwrap())
            })
        });
    }
    g.finish();
}

fn bench_router(c: &mut Criterion) {
    let mut g = c.benchmark_group("router");
    let mut router = Router::new();
    router.get("/health", |_, _| Response::status(StatusCode::OK));
    router.get("/surveys", |_, _| Response::status(StatusCode::OK));
    router.get("/surveys/:id", |_, _| Response::status(StatusCode::OK));
    router.post("/surveys/:id/responses", |_, _| {
        Response::status(StatusCode::CREATED)
    });
    router.get("/surveys/:id/results/:question", |_, _| {
        Response::status(StatusCode::OK)
    });
    router.get("/ledger/:user", |_, _| Response::status(StatusCode::OK));

    let deep = Request::new(Method::Get, "/surveys/42/results/3");
    g.bench_function("dispatch_deep_route", |b| {
        b.iter(|| black_box(router.dispatch(&deep)))
    });
    let miss = Request::new(Method::Get, "/nothing/here");
    g.bench_function("dispatch_miss", |b| {
        b.iter(|| black_box(router.dispatch(&miss)))
    });
    g.finish();
}

fn bench_response(c: &mut Criterion) {
    let mut g = c.benchmark_group("response");
    let resp = Response::json_bytes(StatusCode::OK, vec![b'x'; 1024]);
    g.throughput(Throughput::Bytes(1024));
    g.bench_function("serialize_1KiB_json", |b| {
        b.iter(|| black_box(resp.to_bytes(false)))
    });
    g.finish();
}

criterion_group!(benches, bench_parser, bench_router, bench_response);
criterion_main!(benches);
