//! `loki-app` — the Fig. 1 app flow as a CLI.
//!
//! ```sh
//! loki-app --server http://127.0.0.1:8080 --user alice \
//!          --survey 1 --level medium --answers 4,5,3,4,2 [--seed N] [--dry-run]
//! ```
//!
//! Mirrors the paper's three screens: list surveys + pick a privacy level
//! (Fig. 1(a)), answer (Fig. 1(b)), and review the obfuscated values that
//! will be uploaded (Fig. 1(c)). `--dry-run` stops after the preview.

use loki_client::LokiClient;
use loki_core::privacy_level::PrivacyLevel;
use loki_survey::question::Answer;
use loki_survey::survey::SurveyId;
use loki_survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;

struct Options {
    server: String,
    user: String,
    survey: Option<u64>,
    level: PrivacyLevel,
    answers: Vec<f64>,
    seed: u64,
    dry_run: bool,
}

fn parse_level(s: &str) -> Result<PrivacyLevel, String> {
    match s {
        "none" => Ok(PrivacyLevel::None),
        "low" => Ok(PrivacyLevel::Low),
        "medium" => Ok(PrivacyLevel::Medium),
        "high" => Ok(PrivacyLevel::High),
        other => Err(format!("unknown privacy level: {other}")),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        server: "http://127.0.0.1:8080".to_string(),
        user: "demo-user".to_string(),
        survey: None,
        level: PrivacyLevel::Medium,
        answers: Vec::new(),
        seed: 0,
        dry_run: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--server" => opts.server = args.next().ok_or("--server needs a value")?,
            "--user" => opts.user = args.next().ok_or("--user needs a value")?,
            "--survey" => {
                opts.survey = Some(
                    args.next()
                        .ok_or("--survey needs a value")?
                        .parse()
                        .map_err(|e| format!("bad survey id: {e}"))?,
                )
            }
            "--level" => opts.level = parse_level(&args.next().ok_or("--level needs a value")?)?,
            "--answers" => {
                opts.answers = args
                    .next()
                    .ok_or("--answers needs a value")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad answer: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--seed" => {
                opts.seed = args
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?
            }
            "--dry-run" => opts.dry_run = true,
            "--help" | "-h" => {
                return Err(
                    "usage: loki-app --server URL --user NAME [--survey N --level L --answers a,b,c] [--seed N] [--dry-run]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let mut rng = ChaCha20Rng::seed_from_u64(opts.seed);
    let mut app = match LokiClient::connect(&opts.server, opts.user.clone()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            std::process::exit(1);
        }
    };

    // Screen 1: the survey list.
    let surveys = match app.list_surveys() {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot list surveys: {e}");
            std::process::exit(1);
        }
    };
    println!("surveys on {}:", opts.server);
    for s in &surveys {
        println!("  [{}] {} — {} questions, {}c reward", s.id, s.title, s.questions, s.reward_cents);
    }
    let Some(survey_id) = opts.survey else {
        println!("\npick one with --survey N --level none|low|medium|high --answers a,b,c,…");
        return;
    };

    let survey = match app.fetch_survey(SurveyId(survey_id)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot fetch survey {survey_id}: {e}");
            std::process::exit(1);
        }
    };
    if opts.answers.len() != survey.len() {
        eprintln!(
            "survey has {} questions but --answers provided {}",
            survey.len(),
            opts.answers.len()
        );
        std::process::exit(2);
    }

    // Screen 2: answers.
    let mut answers = BTreeMap::new();
    println!("\n\"{}\" at privacy level '{}':", survey.title, opts.level);
    for (q, &v) in survey.questions.iter().zip(&opts.answers) {
        println!("  {}: {} -> you answered {v}", q.id, q.text);
        answers.insert(QuestionId(q.id.0), Answer::Rating(v));
    }

    // Screen 3: obfuscation preview.
    let preview = match app.preview(&mut rng, &survey, &answers, opts.level) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot preview: {e}");
            std::process::exit(1);
        }
    };
    println!("\nwhat will actually upload (σ = {}):", opts.level.sigma());
    for (q, raw, noisy) in &preview.items {
        println!(
            "  {q}: {:.1}  ->  {:.2}",
            raw.as_f64().unwrap_or(f64::NAN),
            noisy.as_f64().unwrap_or(f64::NAN)
        );
    }
    if opts.dry_run {
        println!("\n--dry-run: nothing uploaded.");
        return;
    }

    match app.submit(&mut rng, &survey, &answers, opts.level) {
        Ok(outcome) => {
            println!(
                "\nsubmitted (server now holds {} responses). cumulative ε: {}",
                outcome.stored,
                outcome
                    .cumulative_epsilon
                    .map_or("∞".to_string(), |e| format!("{e:.3}"))
            );
            println!(
                "local ledger says ε = {:.3} — no need to trust the server's figure.",
                app.local_loss().epsilon.value()
            );
        }
        Err(e) => {
            eprintln!("submit failed: {e}");
            std::process::exit(1);
        }
    }
}
