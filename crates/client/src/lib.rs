//! # loki-client — the app-side library
//!
//! The Rust equivalent of the paper's iPhone/Android app (Fig. 1): it
//! lists surveys, lets the user pick a privacy level, obfuscates answers
//! **locally** and uploads only the noisy values. Raw answers never leave
//! [`LokiClient::submit`]'s stack frame — that is the at-source property
//! the whole design exists for — and the client keeps its own local
//! ledger mirror so a user can see their cumulative loss without trusting
//! the server.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use loki_core::obfuscate::{ObfuscationError, Obfuscator};
use loki_core::privacy_level::PrivacyLevel;
use loki_dp::accountant::{Accountant, ReleaseKind};
use loki_dp::params::{Delta, PrivacyLoss};
use loki_net::client::{ClientError, HttpClient};
use loki_net::json::parse_json_response;
use loki_survey::question::Answer;
use loki_survey::response::Response;
use loki_survey::survey::{Survey, SurveyId};
use loki_survey::QuestionId;
use rand::Rng;
use serde::Deserialize;
use std::collections::BTreeMap;

/// Client-side errors.
#[derive(Debug)]
pub enum LokiError {
    /// Transport failure.
    Http(ClientError),
    /// The server answered with an unexpected status/body.
    Api(String),
    /// Local obfuscation failed.
    Obfuscation(ObfuscationError),
}

impl std::fmt::Display for LokiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LokiError::Http(e) => write!(f, "http: {e}"),
            LokiError::Api(e) => write!(f, "api: {e}"),
            LokiError::Obfuscation(e) => write!(f, "obfuscation: {e}"),
        }
    }
}

impl std::error::Error for LokiError {}

impl From<ClientError> for LokiError {
    fn from(e: ClientError) -> Self {
        LokiError::Http(e)
    }
}

impl From<ObfuscationError> for LokiError {
    fn from(e: ObfuscationError) -> Self {
        LokiError::Obfuscation(e)
    }
}

/// A survey row as shown in the app's list screen.
#[derive(Debug, Clone, Deserialize)]
pub struct SurveyListItem {
    /// Survey id.
    pub id: u64,
    /// Title.
    pub title: String,
    /// Question count.
    pub questions: usize,
    /// Reward in cents.
    pub reward_cents: u32,
}

/// What a submission returned.
#[derive(Debug, Clone, Deserialize)]
pub struct SubmitOutcome {
    /// Responses the server now holds for the survey.
    pub stored: usize,
    /// Server-tracked cumulative ε (None = unbounded).
    pub cumulative_epsilon: Option<f64>,
}

/// A preview of what would be uploaded — the Fig. 1(c) screen.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadPreview {
    /// (question, raw answer, obfuscated answer) triples.
    pub items: Vec<(QuestionId, Answer, Answer)>,
}

/// Client-side observability: plain attempt/retry/error counters, shared
/// behind an `Arc` so callers can watch a session they handed off.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    requests: loki_obs::Counter,
    retries: loki_obs::Counter,
    http_errors: loki_obs::Counter,
    api_errors: loki_obs::Counter,
}

impl ClientMetrics {
    /// Request attempts issued (retries count as new attempts).
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Attempts that were retries of a failed transport call.
    pub fn retries(&self) -> u64 {
        self.retries.get()
    }

    /// Requests that exhausted retries with a transport failure.
    pub fn http_errors(&self) -> u64 {
        self.http_errors.get()
    }

    /// Responses that arrived but carried a non-success status.
    pub fn api_errors(&self) -> u64 {
        self.api_errors.get()
    }
}

/// The Loki app session for one user.
#[derive(Debug)]
pub struct LokiClient {
    http: HttpClient,
    user: String,
    local_ledger: Accountant,
    metrics: std::sync::Arc<ClientMetrics>,
    retries: u32,
}

impl LokiClient {
    /// Connects a user session to a server base URL.
    pub fn connect(base_url: &str, user: impl Into<String>) -> Result<LokiClient, LokiError> {
        Ok(LokiClient {
            http: HttpClient::new(base_url)?,
            user: user.into(),
            local_ledger: Accountant::new(),
            metrics: std::sync::Arc::default(),
            retries: 0,
        })
    }

    /// Retries transport failures of idempotent GETs up to `n` extra
    /// attempts. Submissions are never retried: a response that was
    /// stored but whose acknowledgement was lost must not be re-sent.
    pub fn with_retries(mut self, n: u32) -> LokiClient {
        self.retries = n;
        self
    }

    /// This session's request/error counters.
    pub fn metrics(&self) -> std::sync::Arc<ClientMetrics> {
        std::sync::Arc::clone(&self.metrics)
    }

    /// The session's user id.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// GET with transport-level retry (idempotent requests only).
    fn get_with_retry(&self, path: &str) -> Result<loki_net::http::Response, LokiError> {
        let mut attempt = 0;
        loop {
            self.metrics.requests.inc();
            match self.http.get(path) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    if attempt >= self.retries {
                        self.metrics.http_errors.inc();
                        return Err(LokiError::Http(e));
                    }
                    attempt += 1;
                    self.metrics.retries.inc();
                }
            }
        }
    }

    /// Maps a non-success response to an error, counting it. When the
    /// server stamped the response with a trace id, the error carries it
    /// so a user report can be joined to the server-side span tree.
    fn api_error(&self, what: &str, resp: &loki_net::http::Response) -> LokiError {
        self.metrics.api_errors.inc();
        match resp.headers.get(loki_net::http::TRACE_ID_HEADER) {
            Some(trace) => LokiError::Api(format!(
                "{what} failed: {} [trace {trace}]",
                resp.status
            )),
            None => LokiError::Api(format!("{what} failed: {}", resp.status)),
        }
    }

    /// Lists available surveys (Fig. 1(a)).
    pub fn list_surveys(&self) -> Result<Vec<SurveyListItem>, LokiError> {
        let resp = self.get_with_retry("/v1/surveys")?;
        if !resp.status.is_success() {
            return Err(self.api_error("list", &resp));
        }
        parse_json_response(&resp).map_err(LokiError::Api)
    }

    /// Fetches a full survey definition.
    pub fn fetch_survey(&self, id: SurveyId) -> Result<Survey, LokiError> {
        let resp = self.get_with_retry(&format!("/v1/surveys/{}", id.0))?;
        if !resp.status.is_success() {
            return Err(self.api_error("fetch", &resp));
        }
        parse_json_response(&resp).map_err(LokiError::Api)
    }

    /// Obfuscates raw answers locally and shows what would upload —
    /// without uploading. This is the screen that made trial users "feel
    /// comfortable that their privacy was protected" (§3.2).
    pub fn preview<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        survey: &Survey,
        raw_answers: &BTreeMap<QuestionId, Answer>,
        level: PrivacyLevel,
    ) -> Result<UploadPreview, LokiError> {
        let raw = self.assemble(survey, raw_answers);
        let (upload, _) = Obfuscator::new(level).obfuscate_response(rng, survey, &raw)?;
        let items = survey
            .questions
            .iter()
            .map(|q| {
                (
                    q.id,
                    raw.get(q.id).expect("complete").clone(),
                    upload.get(q.id).expect("complete").clone(),
                )
            })
            .collect();
        Ok(UploadPreview { items })
    }

    /// Obfuscates and submits raw answers at the chosen level. The raw
    /// values are consumed here and never serialized.
    pub fn submit<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        survey: &Survey,
        raw_answers: &BTreeMap<QuestionId, Answer>,
        level: PrivacyLevel,
    ) -> Result<SubmitOutcome, LokiError> {
        let raw = self.assemble(survey, raw_answers);
        let (upload, releases) =
            Obfuscator::new(level).obfuscate_response(rng, survey, &raw)?;

        // Mirror into the local ledger before upload: the user's view of
        // their loss must not depend on the server acknowledging.
        for (tag, kind) in &releases {
            self.local_ledger.record(&self.user, tag.clone(), *kind);
        }

        let body = serde_json::json!({
            "user": self.user,
            "privacy_level": level,
            "response": upload,
            "releases": releases,
        });
        self.metrics.requests.inc();
        let resp = self
            .http
            .post(
                &format!("/v1/surveys/{}/responses", survey.id.0),
                "application/json",
                serde_json::to_vec(&body).map_err(|e| LokiError::Api(e.to_string()))?,
            )
            .inspect_err(|_| self.metrics.http_errors.inc())?;
        if !resp.status.is_success() {
            self.metrics.api_errors.inc();
            let trace = resp
                .headers
                .get(loki_net::http::TRACE_ID_HEADER)
                .map(|id| format!(" [trace {id}]"))
                .unwrap_or_default();
            return Err(LokiError::Api(format!(
                "submit failed ({}): {}{trace}",
                resp.status,
                String::from_utf8_lossy(&resp.body)
            )));
        }
        parse_json_response(&resp).map_err(LokiError::Api)
    }

    /// The locally-tracked cumulative loss (no server round-trip).
    pub fn local_loss(&self) -> PrivacyLoss {
        self.local_ledger
            .loss_of(&self.user, Delta::new(loki_dp::DEFAULT_DELTA))
    }

    /// Records a release into the local ledger (used when uploading
    /// through other paths).
    pub fn record_local(&mut self, tag: impl Into<String>, kind: ReleaseKind) {
        self.local_ledger.record(&self.user, tag, kind);
    }

    /// Queries the server's view of this user's ledger.
    pub fn server_loss(&self) -> Result<Option<f64>, LokiError> {
        #[derive(Deserialize)]
        struct LedgerInfo {
            epsilon: Option<f64>,
        }
        let resp = self.get_with_retry(&format!("/v1/ledger/{}", self.user))?;
        if !resp.status.is_success() {
            return Err(self.api_error("ledger", &resp));
        }
        let info: LedgerInfo = parse_json_response(&resp).map_err(LokiError::Api)?;
        Ok(info.epsilon)
    }

    fn assemble(&self, survey: &Survey, answers: &BTreeMap<QuestionId, Answer>) -> Response {
        let mut r = Response::new(self.user.clone(), survey.id);
        for (q, a) in answers {
            r.answer(*q, a.clone());
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::QuestionKind;
    use loki_survey::survey::SurveyBuilder;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        b.question("rate", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    #[test]
    fn preview_pairs_raw_and_noisy() {
        let client = LokiClient::connect("http://127.0.0.1:1", "u").unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let mut answers = BTreeMap::new();
        answers.insert(QuestionId(0), Answer::Rating(4.0));
        let p = client
            .preview(&mut rng, &survey(), &answers, PrivacyLevel::High)
            .unwrap();
        assert_eq!(p.items.len(), 1);
        let (_, raw, noisy) = &p.items[0];
        assert_eq!(raw, &Answer::Rating(4.0));
        assert!(noisy.is_obfuscated());
        assert_ne!(noisy.as_f64(), raw.as_f64());
    }

    #[test]
    fn local_ledger_tracks_without_server() {
        let mut client = LokiClient::connect("http://127.0.0.1:1", "u").unwrap();
        assert_eq!(client.local_loss(), PrivacyLoss::ZERO);
        client.record_local(
            "t",
            ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        );
        assert!(client.local_loss().epsilon.value() > 0.0);
    }

    #[test]
    fn bad_url_rejected() {
        assert!(LokiClient::connect("nope://x", "u").is_err());
    }

    /// A mock backend built on loki-net directly (not loki-server), which
    /// captures the submit body so tests can inspect exactly what crossed
    /// the wire.
    fn mock_server() -> (
        loki_net::server::ServerHandle,
        std::sync::Arc<parking_lot::Mutex<Vec<serde_json::Value>>>,
    ) {
        use loki_net::http::{Response as HttpResponse, StatusCode};
        use loki_net::router::Router;
        use loki_net::server::{Server, ServerConfig};
        let captured = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut router = Router::new();
        router.get("/v1/surveys", |_, _| {
            HttpResponse::json_bytes(
                StatusCode::OK,
                serde_json::to_vec(&serde_json::json!([
                    {"id": 1, "title": "mock", "questions": 1, "reward_cents": 2}
                ]))
                .unwrap(),
            )
        });
        router.get("/v1/surveys/1", |_, _| {
            let mut b = SurveyBuilder::new(SurveyId(1), "mock");
            b.question("rate", QuestionKind::likert5(), false);
            HttpResponse::json_bytes(
                StatusCode::OK,
                serde_json::to_vec(&b.build().unwrap()).unwrap(),
            )
        });
        let sink = std::sync::Arc::clone(&captured);
        router.post("/v1/surveys/1/responses", move |req, _| {
            let body: serde_json::Value = serde_json::from_slice(&req.body).unwrap();
            sink.lock().push(body);
            HttpResponse::json_bytes(
                StatusCode::CREATED,
                serde_json::to_vec(&serde_json::json!({
                    "stored": 1, "cumulative_epsilon": 24.4
                }))
                .unwrap(),
            )
        });
        let handle = Server::spawn("127.0.0.1:0", router, ServerConfig::default()).unwrap();
        (handle, captured)
    }

    #[test]
    fn list_and_fetch_parse_the_wire_format() {
        let (handle, _) = mock_server();
        let client = LokiClient::connect(&handle.base_url(), "u").unwrap();
        let list = client.list_surveys().unwrap();
        assert_eq!(list.len(), 1);
        assert_eq!(list[0].title, "mock");
        let survey = client.fetch_survey(SurveyId(1)).unwrap();
        assert_eq!(survey.len(), 1);
        handle.shutdown();
    }

    #[test]
    fn submit_sends_only_obfuscated_values_on_the_wire() {
        let (handle, captured) = mock_server();
        let mut client = LokiClient::connect(&handle.base_url(), "alice").unwrap();
        let survey = client.fetch_survey(SurveyId(1)).unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut answers = BTreeMap::new();
        answers.insert(QuestionId(0), Answer::Rating(4.0));
        let outcome = client
            .submit(&mut rng, &survey, &answers, PrivacyLevel::High)
            .unwrap();
        assert_eq!(outcome.stored, 1);

        let bodies = captured.lock();
        assert_eq!(bodies.len(), 1);
        let body = &bodies[0];
        assert_eq!(body["user"], "alice");
        assert_eq!(body["privacy_level"], "high");
        // The wire carries an Obfuscated variant, never a raw Rating.
        let answer = &body["response"]["answers"]["0"];
        assert!(answer.get("Obfuscated").is_some(), "wire answer: {answer}");
        let v = answer["Obfuscated"].as_f64().unwrap();
        assert_ne!(v, 4.0, "wire value equals the raw answer");
        // Declared releases match the level.
        assert_eq!(body["releases"][0][1]["Gaussian"]["sigma"], 2.0);
        handle.shutdown();
    }

    #[test]
    fn server_error_bodies_surface_in_the_error() {
        use loki_net::http::{Response as HttpResponse, StatusCode};
        use loki_net::router::Router;
        use loki_net::server::{Server, ServerConfig};
        let mut router = Router::new();
        router.get("/v1/surveys", |_, _| {
            let mut resp = HttpResponse::text(StatusCode::INTERNAL_ERROR, "boom");
            resp.headers
                .insert(loki_net::http::TRACE_ID_HEADER, "00000000000000ab");
            resp
        });
        let handle = Server::spawn("127.0.0.1:0", router, ServerConfig::default()).unwrap();
        let client = LokiClient::connect(&handle.base_url(), "u").unwrap();
        match client.list_surveys() {
            Err(LokiError::Api(msg)) => {
                assert!(msg.contains("500"), "{msg}");
                // The server's trace id surfaces in the user-facing error.
                assert!(msg.contains("[trace 00000000000000ab]"), "{msg}");
            }
            other => panic!("expected Api error, got {other:?}"),
        }
        assert_eq!(client.metrics().api_errors(), 1);
        handle.shutdown();
    }

    #[test]
    fn metrics_count_attempts_retries_and_transport_errors() {
        // Nothing listens on port 1, so every attempt fails at transport
        // level; with 2 retries that is 3 attempts and one final error.
        let client = LokiClient::connect("http://127.0.0.1:1", "u")
            .unwrap()
            .with_retries(2);
        assert!(matches!(client.list_surveys(), Err(LokiError::Http(_))));
        let m = client.metrics();
        assert_eq!(m.requests(), 3);
        assert_eq!(m.retries(), 2);
        assert_eq!(m.http_errors(), 1);
        assert_eq!(m.api_errors(), 0);
    }

    #[test]
    fn submissions_are_never_retried() {
        let mut client = LokiClient::connect("http://127.0.0.1:1", "u")
            .unwrap()
            .with_retries(5);
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let mut answers = BTreeMap::new();
        answers.insert(QuestionId(0), Answer::Rating(4.0));
        match client.submit(&mut rng, &survey(), &answers, PrivacyLevel::Low) {
            Err(LokiError::Http(_)) => {}
            other => panic!("expected transport failure, got {other:?}"),
        }
        let m = client.metrics();
        assert_eq!(m.requests(), 1, "submit must not retry");
        assert_eq!(m.retries(), 0);
        assert_eq!(m.http_errors(), 1);
    }

    #[test]
    fn incomplete_answers_fail_locally() {
        // Submission of an incomplete answer set must fail in obfuscation
        // (before any network I/O — the URL here points nowhere).
        let mut client = LokiClient::connect("http://127.0.0.1:1", "u").unwrap();
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let answers = BTreeMap::new();
        match client.submit(&mut rng, &survey(), &answers, PrivacyLevel::Low) {
            Err(LokiError::Obfuscation(_)) => {}
            other => panic!("expected local obfuscation failure, got {other:?}"),
        }
    }
}
