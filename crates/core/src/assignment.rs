//! Accuracy-constrained privacy-level assignment.
//!
//! §3.1's full claim is that cumulative loss is "tracked and balanced
//! across the user base, **while ensuring sufficient accuracy of the
//! aggregated response**". [`crate::ledger::BudgetBalancer`] handles the
//! first half (who to invite); this module handles the joint problem:
//! *which privacy level should each invited user answer at* so that the
//! survey's pooled estimate meets a target standard error while the
//! worst-off user's cumulative ε stays as small as possible.
//!
//! The solver exploits the problem's monotone structure: for a candidate
//! cap `C` on post-survey cumulative ε, each user can afford exactly the
//! levels with `current_ε + ε_level ≤ C`, and would contribute the most
//! *precision* (inverse variance) by picking the noisiest-affordable…
//! no — the *least* noisy affordable level. Feasibility of `C` is
//! therefore a simple sum, monotone in `C`, and the minimal cap is found
//! by binary search. Within the optimal cap, users are enrolled in order
//! of precision-per-ε efficiency until the target is met.

use crate::privacy_level::PrivacyLevel;
use loki_dp::utility;
use serde::{Deserialize, Serialize};

/// A user eligible for assignment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Candidate {
    /// User identifier.
    pub id: String,
    /// Current cumulative ε (from the accountant).
    pub current_epsilon: f64,
}

/// One assignment: a user and the level they are asked to answer at.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The user.
    pub id: String,
    /// The assigned level.
    pub level: PrivacyLevel,
}

/// The solver's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AssignmentPlan {
    /// Enrolled users with levels.
    pub assignments: Vec<Assignment>,
    /// The minimal feasible cap on post-survey cumulative ε.
    pub epsilon_cap: f64,
    /// Predicted standard error of the survey mean under the plan.
    pub predicted_se: f64,
}

/// Why no plan exists.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentError {
    /// Even enrolling every user at the least-noisy level cannot reach
    /// the target standard error.
    TargetUnreachable {
        /// The best achievable standard error.
        best_possible_se: f64,
    },
}

impl std::fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AssignmentError::TargetUnreachable { best_possible_se } => write!(
                f,
                "accuracy target unreachable: best possible SE is {best_possible_se:.4}"
            ),
        }
    }
}

impl std::error::Error for AssignmentError {}

/// The level menu the optimizer assigns from: the finite-ε levels,
/// noisiest (cheapest) first.
const MENU: [PrivacyLevel; 3] = [PrivacyLevel::High, PrivacyLevel::Medium, PrivacyLevel::Low];

/// Accuracy-constrained min-max-ε assignment.
#[derive(Debug, Clone, Copy)]
pub struct Assigner {
    /// Assumed population spread of true answers.
    pub pop_std: f64,
    /// Answer range (sensitivity) of the survey's rating questions.
    pub range: f64,
}

impl Assigner {
    /// Creates an assigner for a rating scale.
    ///
    /// # Panics
    /// Panics unless both parameters are strictly positive.
    pub fn new(pop_std: f64, range: f64) -> Assigner {
        assert!(pop_std > 0.0, "population spread must be positive");
        assert!(range > 0.0, "answer range must be positive");
        Assigner { pop_std, range }
    }

    /// Per-answer ε of a level on this scale.
    fn level_epsilon(&self, level: PrivacyLevel) -> f64 {
        level.privacy_loss(self.range).epsilon.value()
    }

    /// Precision (inverse variance) one answer at `level` contributes.
    fn level_precision(&self, level: PrivacyLevel) -> f64 {
        let sigma = level.sigma_for_range(self.range);
        1.0 / (self.pop_std * self.pop_std + sigma * sigma)
    }

    /// Total precision achievable under a cumulative-ε cap `cap`.
    fn precision_under_cap(&self, candidates: &[Candidate], cap: f64) -> f64 {
        candidates
            .iter()
            .map(|c| {
                MENU.iter()
                    .filter(|&&level| c.current_epsilon + self.level_epsilon(level) <= cap)
                    .map(|&level| self.level_precision(level))
                    .fold(0.0f64, f64::max)
            })
            .sum()
    }

    /// Builds the plan.
    ///
    /// # Panics
    /// Panics if `target_se` is not strictly positive.
    pub fn plan(
        &self,
        candidates: &[Candidate],
        target_se: f64,
    ) -> Result<AssignmentPlan, AssignmentError> {
        assert!(target_se > 0.0, "target standard error must be positive");
        let required_precision = 1.0 / (target_se * target_se);

        // Feasibility ceiling: everyone at the least-noisy level.
        let max_precision: f64 =
            candidates.len() as f64 * self.level_precision(PrivacyLevel::Low);
        if max_precision < required_precision {
            return Err(AssignmentError::TargetUnreachable {
                best_possible_se: if max_precision > 0.0 {
                    (1.0 / max_precision).sqrt()
                } else {
                    f64::INFINITY
                },
            });
        }

        // Binary-search the minimal cap C for which the achievable
        // precision meets the requirement.
        let cheapest = self.level_epsilon(PrivacyLevel::High);
        let costliest = self.level_epsilon(PrivacyLevel::Low);
        let mut lo = candidates
            .iter()
            .map(|c| c.current_epsilon)
            .fold(f64::INFINITY, f64::min)
            + cheapest;
        let mut hi = candidates
            .iter()
            .map(|c| c.current_epsilon)
            .fold(0.0f64, f64::max)
            + costliest;
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if self.precision_under_cap(candidates, mid) >= required_precision {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let cap = hi;

        // Under the cap, each user's best affordable level; enroll the
        // most efficient users first until the target is met.
        let mut options: Vec<(usize, PrivacyLevel, f64)> = candidates
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                MENU.iter()
                    .filter(|&&level| c.current_epsilon + self.level_epsilon(level) <= cap)
                    .map(|&level| (level, self.level_precision(level)))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .map(|(level, precision)| (i, level, precision))
            })
            .collect();
        // Highest precision first; ties to the lower current ε so fresh
        // users absorb the cost.
        options.sort_by(|a, b| {
            b.2.total_cmp(&a.2).then(
                candidates[a.0]
                    .current_epsilon
                    .total_cmp(&candidates[b.0].current_epsilon),
            )
        });
        let mut assignments = Vec::new();
        let mut precision = 0.0;
        for (i, level, p) in options {
            if precision >= required_precision {
                break;
            }
            precision += p;
            assignments.push(Assignment {
                id: candidates[i].id.clone(),
                level,
            });
        }
        debug_assert!(precision >= required_precision);
        Ok(AssignmentPlan {
            assignments,
            epsilon_cap: cap,
            predicted_se: (1.0 / precision).sqrt(),
        })
    }
}

/// Convenience: the predicted standard error of a plan, recomputed from
/// scratch (used by tests and dashboards).
pub fn predicted_se(assigner: &Assigner, plan: &AssignmentPlan) -> f64 {
    let weights: Vec<(usize, f64)> = plan
        .assignments
        .iter()
        .map(|a| (1usize, a.level.sigma_for_range(assigner.range)))
        .collect();
    // Σ 1/(pop²+σ²) over assignments.
    let precision: f64 = weights
        .iter()
        .map(|&(n, sigma)| n as f64 / (assigner.pop_std * assigner.pop_std + sigma * sigma))
        .sum();
    let _ = utility::mean_standard_error; // shared formula lives in loki-dp
    (1.0 / precision).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_pool(n: usize) -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate {
                id: format!("u{i:03}"),
                current_epsilon: 0.0,
            })
            .collect()
    }

    #[test]
    fn plan_meets_the_accuracy_target() {
        let assigner = Assigner::new(0.8, 4.0);
        let plan = assigner.plan(&fresh_pool(100), 0.2).unwrap();
        assert!(plan.predicted_se <= 0.2 + 1e-9, "SE {}", plan.predicted_se);
        assert!((predicted_se(&assigner, &plan) - plan.predicted_se).abs() < 1e-9);
        assert!(!plan.assignments.is_empty());
    }

    #[test]
    fn fresh_pool_gets_high_privacy() {
        // With everyone at ε=0 and a loose target, the minimal cap admits
        // only the cheapest (high-privacy) level.
        let assigner = Assigner::new(0.8, 4.0);
        let plan = assigner.plan(&fresh_pool(200), 0.5).unwrap();
        assert!(plan
            .assignments
            .iter()
            .all(|a| a.level == PrivacyLevel::High));
        // Cap ≈ ε(high).
        let eps_high = PrivacyLevel::High.privacy_loss(4.0).epsilon.value();
        assert!((plan.epsilon_cap - eps_high).abs() < 0.1, "{}", plan.epsilon_cap);
    }

    #[test]
    fn tight_target_escalates_levels() {
        // A small pool with a demanding target forces less-noisy levels
        // (12 users: all-High gives SE 0.62, all-Medium 0.37, so 0.30
        // requires mostly Low).
        let assigner = Assigner::new(0.8, 4.0);
        let plan = assigner.plan(&fresh_pool(12), 0.30).unwrap();
        assert!(
            plan.assignments
                .iter()
                .any(|a| a.level == PrivacyLevel::Low),
            "levels: {:?}",
            plan.assignments.iter().map(|a| a.level).collect::<Vec<_>>()
        );
        assert!(plan.predicted_se <= 0.30 + 1e-9);
    }

    #[test]
    fn unreachable_target_errors_with_best_se() {
        let assigner = Assigner::new(0.8, 4.0);
        let err = assigner.plan(&fresh_pool(4), 0.05).unwrap_err();
        match err {
            AssignmentError::TargetUnreachable { best_possible_se } => {
                // 4 users at Low: SE = sqrt((0.64+0.25)/4).
                let want = ((0.8f64 * 0.8 + 0.25) / 4.0).sqrt();
                assert!((best_possible_se - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn burdened_users_are_spared() {
        // Half the pool is heavily burdened; the plan must meet the
        // target using the fresh half (at a stricter level) rather than
        // raising the cap over the burdened users.
        let assigner = Assigner::new(0.8, 4.0);
        let mut pool = fresh_pool(40);
        for c in pool.iter_mut().take(20) {
            c.current_epsilon = 500.0;
        }
        let plan = assigner.plan(&pool, 0.25).unwrap();
        assert!(plan.predicted_se <= 0.25 + 1e-9);
        for a in &plan.assignments {
            let idx: usize = a.id[1..].parse().unwrap();
            assert!(idx >= 20, "burdened user {} enrolled", a.id);
        }
        // And the cap stays below the burdened users' floor.
        assert!(plan.epsilon_cap < 500.0);
    }

    #[test]
    fn no_user_enrolled_twice() {
        let assigner = Assigner::new(0.8, 4.0);
        let plan = assigner.plan(&fresh_pool(50), 0.15).unwrap();
        let mut ids: Vec<&str> = plan.assignments.iter().map(|a| a.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(before, ids.len());
    }

    #[test]
    fn cap_is_minimal() {
        // Decreasing the cap below the found one must break feasibility.
        let assigner = Assigner::new(0.8, 4.0);
        let pool = fresh_pool(30);
        let plan = assigner.plan(&pool, 0.2).unwrap();
        let required = 1.0 / (0.2f64 * 0.2);
        let below = assigner.precision_under_cap(&pool, plan.epsilon_cap * 0.98);
        assert!(
            below < required,
            "cap not minimal: {} still feasible",
            plan.epsilon_cap * 0.98
        );
    }

    #[test]
    #[should_panic(expected = "target standard error must be positive")]
    fn zero_target_rejected() {
        let assigner = Assigner::new(0.8, 4.0);
        let _ = assigner.plan(&fresh_pool(5), 0.0);
    }
}
