//! Deconvolution of the rating distribution from noisy uploads.
//!
//! The sample mean recovers a lecturer's *average* rating; the full
//! *histogram* of true ratings (how many 1s, …, how many 5s) is blurred
//! by the obfuscation noise. Because true answers live on a small known
//! grid and the noise density per upload is known exactly (each bin's σ
//! is public), the mixture is identifiable and an EM estimator recovers
//! it:
//!
//! * E-step: `w_ik ∝ p_k · φ((y_i − k)/σ_i)` — posterior of true answer
//!   `k` for upload `y_i`;
//! * M-step: `p_k = mean_i w_ik`.
//!
//! Uploads from the *none* bin (σ = 0) contribute point masses. This is
//! the natural "framework" extension of §3.1: the paper's estimator is
//! the mean, this one returns everything the mean is a functional of.

use serde::{Deserialize, Serialize};

/// A noisy upload paired with the (public) noise level it was made at.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoisySample {
    /// The uploaded value.
    pub value: f64,
    /// The Gaussian σ the client declared for this upload (0 = exact).
    pub sigma: f64,
}

/// Result of a deconvolution run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deconvolved {
    /// Scale minimum (the value `probabilities[0]` corresponds to).
    pub scale_min: i64,
    /// Estimated probability of each scale point.
    pub probabilities: Vec<f64>,
    /// Implied mean.
    pub mean: f64,
    /// Log-likelihood at convergence.
    pub log_likelihood: f64,
    /// EM iterations used.
    pub iterations: usize,
}

/// EM deconvolution over an integer scale `[scale_min, scale_max]`.
#[derive(Debug, Clone, Copy)]
pub struct Deconvolver {
    scale_min: i64,
    scale_max: i64,
    max_iters: usize,
    tolerance: f64,
}

impl Deconvolver {
    /// Creates a deconvolver for an inclusive integer scale.
    ///
    /// # Panics
    /// Panics if `scale_min >= scale_max`.
    pub fn new(scale_min: i64, scale_max: i64) -> Deconvolver {
        assert!(scale_min < scale_max, "need a non-degenerate scale");
        Deconvolver {
            scale_min,
            scale_max,
            max_iters: 500,
            tolerance: 1e-9,
        }
    }

    /// Overrides the iteration cap (default 500).
    pub fn with_max_iters(mut self, iters: usize) -> Deconvolver {
        self.max_iters = iters.max(1);
        self
    }

    /// Runs EM on the samples.
    ///
    /// # Panics
    /// Panics if `samples` is empty or any σ is negative/non-finite.
    pub fn run(&self, samples: &[NoisySample]) -> Deconvolved {
        assert!(!samples.is_empty(), "cannot deconvolve zero samples");
        for s in samples {
            assert!(
                s.sigma >= 0.0 && s.sigma.is_finite() && s.value.is_finite(),
                "bad sample {s:?}"
            );
        }
        let k = (self.scale_max - self.scale_min + 1) as usize;
        let n = samples.len();

        // Precompute per-sample likelihood of each scale point.
        // For σ = 0 the sample pins its nearest scale point.
        let mut lik = vec![vec![0.0f64; k]; n];
        for (i, s) in samples.iter().enumerate() {
            if s.sigma == 0.0 {
                let nearest = (s.value.round() as i64)
                    .clamp(self.scale_min, self.scale_max)
                    - self.scale_min;
                lik[i][nearest as usize] = 1.0;
            } else {
                for (j, cell) in lik[i].iter_mut().enumerate() {
                    let center = (self.scale_min + j as i64) as f64;
                    let z = (s.value - center) / s.sigma;
                    *cell = (-0.5 * z * z).exp() / s.sigma;
                }
            }
        }

        // EM from a uniform start.
        let mut p = vec![1.0 / k as f64; k];
        let mut last_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        for iter in 0..self.max_iters {
            iterations = iter + 1;
            let mut next = vec![0.0f64; k];
            let mut ll = 0.0;
            for row in &lik {
                let total: f64 = p.iter().zip(row).map(|(pj, lj)| pj * lj).sum();
                // A sample infinitely far from every scale point can
                // underflow; treat as uninformative rather than poisoning
                // the estimate with NaN.
                if total <= 0.0 {
                    continue;
                }
                ll += total.ln();
                for ((nj, pj), lj) in next.iter_mut().zip(&p).zip(row) {
                    *nj += pj * lj / total;
                }
            }
            let norm: f64 = next.iter().sum();
            if norm > 0.0 {
                for v in &mut next {
                    *v /= norm;
                }
                p = next;
            }
            if (ll - last_ll).abs() < self.tolerance {
                last_ll = ll;
                break;
            }
            last_ll = ll;
        }

        let mean = p
            .iter()
            .enumerate()
            .map(|(j, &pj)| pj * (self.scale_min + j as i64) as f64)
            .sum();
        Deconvolved {
            scale_min: self.scale_min,
            probabilities: p,
            mean,
            log_likelihood: last_ll,
            iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_dp::sampling;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    /// Draws n noisy samples from a known discrete distribution.
    fn synth(
        rng: &mut ChaCha20Rng,
        probs: &[f64],
        sigma: f64,
        n: usize,
    ) -> Vec<NoisySample> {
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen_range(0.0..1.0);
                let mut acc = 0.0;
                let mut x = 1;
                for (j, &p) in probs.iter().enumerate() {
                    acc += p;
                    if u < acc {
                        x = j as i64 + 1;
                        break;
                    }
                }
                NoisySample {
                    value: sampling::gaussian(rng, x as f64, sigma),
                    sigma,
                }
            })
            .collect()
    }

    #[test]
    fn recovers_distribution_under_noise() {
        let truth = [0.05, 0.10, 0.20, 0.40, 0.25];
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let samples = synth(&mut rng, &truth, 1.0, 20_000);
        let out = Deconvolver::new(1, 5).run(&samples);
        for (j, &t) in truth.iter().enumerate() {
            assert!(
                (out.probabilities[j] - t).abs() < 0.04,
                "p[{j}] = {} vs {t}",
                out.probabilities[j]
            );
        }
        let true_mean: f64 = truth.iter().enumerate().map(|(j, p)| p * (j as f64 + 1.0)).sum();
        assert!((out.mean - true_mean).abs() < 0.05);
    }

    #[test]
    fn exact_samples_reproduce_histogram() {
        // σ = 0 samples: the estimate is just the empirical histogram.
        let samples: Vec<NoisySample> = [1.0, 1.0, 3.0, 5.0]
            .iter()
            .map(|&v| NoisySample { value: v, sigma: 0.0 })
            .collect();
        let out = Deconvolver::new(1, 5).run(&samples);
        assert!((out.probabilities[0] - 0.5).abs() < 1e-9);
        assert!((out.probabilities[2] - 0.25).abs() < 1e-9);
        assert!((out.probabilities[4] - 0.25).abs() < 1e-9);
        assert!((out.mean - 2.5).abs() < 1e-9);
    }

    #[test]
    fn mixed_sigma_bins_combine() {
        // Half exact, half very noisy: estimate should still be close,
        // dominated by the exact half.
        let truth = [0.0, 0.0, 0.3, 0.5, 0.2];
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let mut samples = synth(&mut rng, &truth, 0.0, 4_000);
        samples.extend(synth(&mut rng, &truth, 2.0, 4_000));
        let out = Deconvolver::new(1, 5).run(&samples);
        for (j, &t) in truth.iter().enumerate() {
            assert!(
                (out.probabilities[j] - t).abs() < 0.05,
                "p[{j}] = {}",
                out.probabilities[j]
            );
        }
    }

    #[test]
    fn deconvolved_beats_clamped_rounding() {
        // Competitor: round each noisy upload to the nearest scale point
        // and histogram it — badly biased at σ = 2 (mass piles at 1 & 5).
        let truth = [0.0, 0.1, 0.6, 0.3, 0.0];
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let samples = synth(&mut rng, &truth, 2.0, 30_000);
        let out = Deconvolver::new(1, 5).run(&samples);

        let mut rounded = [0.0f64; 5];
        for s in &samples {
            let j = (s.value.round() as i64).clamp(1, 5) - 1;
            rounded[j as usize] += 1.0 / samples.len() as f64;
        }
        let em_err: f64 = truth
            .iter()
            .zip(&out.probabilities)
            .map(|(t, p)| (t - p).abs())
            .sum();
        let rounded_err: f64 = truth
            .iter()
            .zip(&rounded)
            .map(|(t, p)| (t - p).abs())
            .sum();
        assert!(
            em_err < rounded_err / 2.0,
            "EM err {em_err} not clearly below rounding err {rounded_err}"
        );
    }

    #[test]
    fn probabilities_form_distribution() {
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let samples = synth(&mut rng, &[0.2; 5], 1.5, 2_000);
        let out = Deconvolver::new(1, 5).run(&samples);
        assert!((out.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(out.probabilities.iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert!(out.iterations >= 1);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_rejected() {
        let _ = Deconvolver::new(1, 5).run(&[]);
    }

    #[test]
    #[should_panic(expected = "non-degenerate scale")]
    fn degenerate_scale_rejected() {
        let _ = Deconvolver::new(3, 3);
    }
}
