//! The app's privacy levels.
//!
//! Fig. 1(a) of the paper shows four options — none, low, medium, high —
//! chosen per survey. "Our obfuscation method adds Gaussian noise to the
//! user's true response, with standard deviation successively larger for
//! higher privacy level." The paper does not print its σ values; we fix
//! σ ∈ {0, 0.5, 1.0, 2.0} on the 1–5 rating scale, which reproduces the
//! relative bin accuracies of Fig. 2 (the only observable constraint).

use loki_dp::mechanisms::gaussian::GaussianMechanism;
use loki_dp::params::{Delta, PrivacyLoss};
use loki_dp::Sensitivity;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A user-chosen privacy level for one survey.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
#[serde(rename_all = "lowercase")]
pub enum PrivacyLevel {
    /// No obfuscation: answers upload verbatim (ε = ∞).
    None,
    /// σ = 0.5 on a 1–5 scale.
    Low,
    /// σ = 1.0.
    Medium,
    /// σ = 2.0.
    High,
}

impl PrivacyLevel {
    /// All levels, weakest privacy first.
    pub const ALL: [PrivacyLevel; 4] = [
        PrivacyLevel::None,
        PrivacyLevel::Low,
        PrivacyLevel::Medium,
        PrivacyLevel::High,
    ];

    /// The Gaussian noise standard deviation this level applies to a
    /// rating on the canonical 1–5 scale.
    pub fn sigma(self) -> f64 {
        match self {
            PrivacyLevel::None => 0.0,
            PrivacyLevel::Low => 0.5,
            PrivacyLevel::Medium => 1.0,
            PrivacyLevel::High => 2.0,
        }
    }

    /// Noise σ scaled to an arbitrary answer range: the canonical σ is
    /// defined for the 4-point-wide rating scale, and scales linearly for
    /// wider/narrower numeric questions so the *relative* perturbation is
    /// level-determined, not range-determined.
    pub fn sigma_for_range(self, range: f64) -> f64 {
        assert!(range > 0.0, "answer range must be positive, got {range}");
        self.sigma() * range / 4.0
    }

    /// The per-response privacy loss of this level on a question with the
    /// given answer range, stated at δ = [`loki_dp::DEFAULT_DELTA`]
    /// (analytic Gaussian accounting). `None` → unbounded loss.
    pub fn privacy_loss(self, range: f64) -> PrivacyLoss {
        match self {
            PrivacyLevel::None => PrivacyLoss::unbounded(),
            _ => {
                let sigma = self.sigma_for_range(range);
                let mech = GaussianMechanism::from_sigma(
                    sigma,
                    Sensitivity::new(range),
                    Delta::new(loki_dp::DEFAULT_DELTA),
                );
                PrivacyLoss {
                    epsilon: mech.epsilon(),
                    delta: Delta::new(loki_dp::DEFAULT_DELTA),
                }
            }
        }
    }

    /// The ε for k-ary randomized response at this level (multiple-choice
    /// obfuscation). Matched to the Gaussian levels by reusing the rating
    /// scale's per-response ε; `None` returns `None` (no perturbation).
    pub fn randomized_response_epsilon(self) -> Option<f64> {
        match self {
            PrivacyLevel::None => None,
            _ => Some(self.privacy_loss(4.0).epsilon.value()),
        }
    }
}

impl fmt::Display for PrivacyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrivacyLevel::None => "none",
            PrivacyLevel::Low => "low",
            PrivacyLevel::Medium => "medium",
            PrivacyLevel::High => "high",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_is_monotone_in_level() {
        let sigmas: Vec<f64> = PrivacyLevel::ALL.iter().map(|l| l.sigma()).collect();
        for w in sigmas.windows(2) {
            assert!(w[0] < w[1], "sigmas not increasing: {sigmas:?}");
        }
    }

    #[test]
    fn epsilon_is_antitone_in_level() {
        // Stronger privacy level ⇒ smaller ε.
        let eps: Vec<f64> = PrivacyLevel::ALL
            .iter()
            .map(|l| l.privacy_loss(4.0).epsilon.value())
            .collect();
        assert!(eps[0].is_infinite());
        assert!(eps[1] > eps[2] && eps[2] > eps[3], "{eps:?}");
        assert!(eps[3] > 0.0);
    }

    #[test]
    fn sigma_scales_with_range() {
        let l = PrivacyLevel::Medium;
        assert_eq!(l.sigma_for_range(4.0), 1.0);
        assert_eq!(l.sigma_for_range(8.0), 2.0);
        assert_eq!(l.sigma_for_range(2.0), 0.5);
    }

    #[test]
    fn scaled_range_preserves_epsilon() {
        // Because σ scales linearly with sensitivity, ε is range-invariant.
        let a = PrivacyLevel::High.privacy_loss(4.0).epsilon.value();
        let b = PrivacyLevel::High.privacy_loss(60.0).epsilon.value();
        assert!((a - b).abs() / a < 1e-3, "{a} vs {b}");
    }

    #[test]
    fn none_is_unbounded() {
        assert!(!PrivacyLevel::None.privacy_loss(4.0).is_finite());
        assert_eq!(PrivacyLevel::None.randomized_response_epsilon(), None);
    }

    #[test]
    fn rr_epsilon_finite_and_ordered() {
        let lo = PrivacyLevel::Low.randomized_response_epsilon().unwrap();
        let hi = PrivacyLevel::High.randomized_response_epsilon().unwrap();
        assert!(lo > hi, "low-privacy ε {lo} must exceed high-privacy ε {hi}");
    }

    #[test]
    #[should_panic(expected = "range must be positive")]
    fn zero_range_rejected() {
        let _ = PrivacyLevel::Low.sigma_for_range(0.0);
    }

    #[test]
    fn display_and_serde() {
        assert_eq!(PrivacyLevel::Medium.to_string(), "medium");
        let json = serde_json::to_string(&PrivacyLevel::High).unwrap();
        assert_eq!(json, "\"high\"");
        let back: PrivacyLevel = serde_json::from_str(&json).unwrap();
        assert_eq!(back, PrivacyLevel::High);
    }
}
