//! The at-source obfuscator.
//!
//! This is the code path Fig. 1(c) shows: the app takes the user's true
//! answers and uploads noisy versions. It runs **client-side only** —
//! `loki-server` never links against this module's `obfuscate_*`
//! functions, and the integration tests assert raw answers never cross
//! the HTTP boundary.
//!
//! * Ratings and bounded numeric answers get Gaussian noise with the
//!   level's σ (scaled to the answer range). Values are *not* clamped
//!   back to the scale — Fig. 1(c) shows off-scale values like 5.74, and
//!   clamping would bias the aggregate.
//! * Multiple-choice answers go through k-ary randomized response at the
//!   level's matched ε.
//! * Free text is rejected with [`ObfuscationError::NotObfuscatable`] —
//!   the response set is not countable (§3.1).

use crate::privacy_level::PrivacyLevel;
use loki_dp::accountant::ReleaseKind;
use loki_dp::mechanisms::discrete_gaussian;
use loki_dp::mechanisms::exponential::ExponentialMechanism;
use loki_dp::mechanisms::randomized_response::RandomizedResponse;
use loki_dp::params::Epsilon;
use loki_dp::sampling;
use loki_survey::question::{Answer, Question, QuestionKind};
use loki_survey::response::Response;
use loki_survey::survey::Survey;
use rand::Rng;
use std::fmt;

/// How numeric (rating / bounded-numeric) answers are perturbed.
///
/// §3.1 notes the noise-adding approach "is general and can be applied to
/// other question types … in which the response set is countable"; these
/// are the three countable-set instantiations the library ships. All
/// three are calibrated so one privacy level costs the same ledger entry
/// regardless of method (Gaussian methods share the RDP curve; the
/// ordinal method is charged its matched pure ε).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ObfuscationMethod {
    /// Continuous Gaussian noise (the paper's deployed method;
    /// Fig. 1(c) shows real-valued uploads like 5.74).
    #[default]
    Continuous,
    /// Discrete Gaussian noise: uploads stay integer-valued, same RDP
    /// guarantee per σ.
    DiscreteInteger,
    /// Exponential mechanism over the integer scale with score
    /// −|candidate − answer|: uploads stay *on-scale*, pure ε-DP.
    OrdinalExponential,
}

/// Why an answer could not be obfuscated.
#[derive(Debug, Clone, PartialEq)]
pub enum ObfuscationError {
    /// The question's response set is not countable (free text).
    NotObfuscatable,
    /// The answer does not match the question kind or fails validation.
    InvalidAnswer(String),
}

impl fmt::Display for ObfuscationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObfuscationError::NotObfuscatable => {
                write!(f, "free-text answers cannot be obfuscated (not countable)")
            }
            ObfuscationError::InvalidAnswer(e) => write!(f, "invalid answer: {e}"),
        }
    }
}

impl std::error::Error for ObfuscationError {}

/// An obfuscated answer plus the ledger entry describing its privacy cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ObfuscatedAnswer {
    /// The value to upload.
    pub answer: Answer,
    /// What to record in the privacy ledger.
    pub release: ReleaseKind,
}

/// The at-source obfuscator for one privacy level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Obfuscator {
    level: PrivacyLevel,
    method: ObfuscationMethod,
}

impl Obfuscator {
    /// Creates an obfuscator at a privacy level with the default
    /// (continuous Gaussian) method.
    pub fn new(level: PrivacyLevel) -> Obfuscator {
        Obfuscator {
            level,
            method: ObfuscationMethod::Continuous,
        }
    }

    /// Selects the numeric obfuscation method.
    pub fn with_method(mut self, method: ObfuscationMethod) -> Obfuscator {
        self.method = method;
        self
    }

    /// The level this obfuscator applies.
    pub fn level(self) -> PrivacyLevel {
        self.level
    }

    /// The numeric method in use.
    pub fn method(self) -> ObfuscationMethod {
        self.method
    }

    /// Obfuscates a single validated answer to `question`.
    pub fn obfuscate_answer<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        question: &Question,
        answer: &Answer,
    ) -> Result<ObfuscatedAnswer, ObfuscationError> {
        question
            .validate_answer(answer)
            .map_err(|e| ObfuscationError::InvalidAnswer(e.to_string()))?;

        match (&question.kind, answer) {
            (QuestionKind::FreeText, _) => Err(ObfuscationError::NotObfuscatable),

            (QuestionKind::Rating { min, max }, Answer::Rating(v)) => {
                Ok(self.numeric_release(rng, *v, f64::from(*min), f64::from(*max)))
            }

            (QuestionKind::Numeric { min, max }, Answer::Numeric(v)) => {
                Ok(self.numeric_release(rng, *v as f64, *min as f64, *max as f64))
            }

            (QuestionKind::MultipleChoice { options }, Answer::Choice(c)) => {
                match self.level.randomized_response_epsilon() {
                    None => Ok(ObfuscatedAnswer {
                        answer: Answer::Choice(*c),
                        release: ReleaseKind::Raw,
                    }),
                    Some(eps) => {
                        let rr = RandomizedResponse::new(options.len(), Epsilon::new(eps));
                        let reported = rr.perturb(rng, *c);
                        Ok(ObfuscatedAnswer {
                            answer: Answer::Choice(reported),
                            release: ReleaseKind::Pure { epsilon: eps },
                        })
                    }
                }
            }

            // Validation above guarantees kind/answer agreement, so any
            // remaining combination is a kind mismatch it already rejected.
            _ => Err(ObfuscationError::InvalidAnswer(
                "answer kind does not match question kind".into(),
            )),
        }
    }

    /// Perturbs a numeric answer on `[lo, hi]` with the selected method.
    fn numeric_release<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        value: f64,
        lo: f64,
        hi: f64,
    ) -> ObfuscatedAnswer {
        let range = hi - lo;
        if self.level == PrivacyLevel::None {
            return ObfuscatedAnswer {
                // Even "none" uploads as Obfuscated(v) so the server-side
                // schema is uniform; the ledger records it as raw.
                answer: Answer::Obfuscated(value),
                release: ReleaseKind::Raw,
            };
        }
        let sigma = self.level.sigma_for_range(range);
        match self.method {
            ObfuscationMethod::Continuous => {
                let noisy = sampling::gaussian(rng, value, sigma);
                ObfuscatedAnswer {
                    answer: Answer::Obfuscated(noisy),
                    release: ReleaseKind::Gaussian {
                        sigma,
                        sensitivity: range,
                    },
                }
            }
            ObfuscationMethod::DiscreteInteger => {
                let noise = discrete_gaussian::sample_discrete_gaussian(rng, sigma);
                ObfuscatedAnswer {
                    answer: Answer::Obfuscated(value.round() + noise as f64),
                    // Discrete Gaussian shares the continuous RDP curve.
                    release: ReleaseKind::Gaussian {
                        sigma,
                        sensitivity: range,
                    },
                }
            }
            ObfuscationMethod::OrdinalExponential => {
                // Candidates are the scale's integers; score rewards
                // closeness to the true answer. Score sensitivity = range
                // (moving the answer across the scale shifts any
                // candidate's score by at most `range`).
                let eps = self
                    .level
                    .randomized_response_epsilon()
                    .expect("level is not None here");
                let mech = ExponentialMechanism::new(Epsilon::new(eps), range);
                let lo_i = lo.round() as i64;
                let hi_i = hi.round() as i64;
                let scores: Vec<f64> = (lo_i..=hi_i)
                    .map(|c| -((c as f64) - value).abs())
                    .collect();
                let chosen = mech.select(rng, &scores);
                ObfuscatedAnswer {
                    answer: Answer::Obfuscated((lo_i + chosen as i64) as f64),
                    release: ReleaseKind::Pure { epsilon: eps },
                }
            }
        }
    }

    /// Obfuscates a whole raw response against its survey, producing the
    /// uploadable response and the ledger entries. Free-text questions are
    /// passed through unmodified (they are excluded from obfuscation, not
    /// from surveys).
    pub fn obfuscate_response<R: Rng + ?Sized>(
        self,
        rng: &mut R,
        survey: &Survey,
        raw: &Response,
    ) -> Result<(Response, Vec<(String, ReleaseKind)>), ObfuscationError> {
        raw.validate(survey)
            .map_err(|e| ObfuscationError::InvalidAnswer(e.to_string()))?;
        let mut upload = Response::new(raw.worker.clone(), raw.survey);
        let mut releases = Vec::new();
        for q in &survey.questions {
            let answer = raw.get(q.id).expect("validated response is complete");
            if matches!(q.kind, QuestionKind::FreeText) {
                upload.answer(q.id, answer.clone());
                continue;
            }
            let ob = self.obfuscate_answer(rng, q, answer)?;
            upload.answer(q.id, ob.answer);
            releases.push((format!("{}/{}", survey.id, q.id), ob.release));
        }
        Ok((upload, releases))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_survey::question::QuestionId;
    use loki_survey::survey::{SurveyBuilder, SurveyId};
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn rating_q() -> Question {
        Question {
            id: QuestionId(0),
            text: "rate".into(),
            kind: QuestionKind::likert5(),
            sensitive: false,
        }
    }

    #[test]
    fn none_level_passes_value_through_as_raw_release() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let ob = Obfuscator::new(PrivacyLevel::None)
            .obfuscate_answer(&mut rng, &rating_q(), &Answer::Rating(4.0))
            .unwrap();
        assert_eq!(ob.answer, Answer::Obfuscated(4.0));
        assert_eq!(ob.release, ReleaseKind::Raw);
    }

    #[test]
    fn gaussian_noise_magnitude_matches_level() {
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let q = rating_q();
        for level in [PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High] {
            let obf = Obfuscator::new(level);
            let n = 20_000;
            let mut sum_sq = 0.0;
            for _ in 0..n {
                let ob = obf
                    .obfuscate_answer(&mut rng, &q, &Answer::Rating(3.0))
                    .unwrap();
                let v = ob.answer.as_f64().unwrap();
                sum_sq += (v - 3.0).powi(2);
            }
            let emp_sigma = (sum_sq / n as f64).sqrt();
            assert!(
                (emp_sigma - level.sigma()).abs() < 0.05,
                "{level}: empirical σ {emp_sigma} vs {}",
                level.sigma()
            );
        }
    }

    #[test]
    fn noisy_values_can_leave_the_scale() {
        // At High (σ=2), answers near the scale edge frequently exceed it.
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let obf = Obfuscator::new(PrivacyLevel::High);
        let q = rating_q();
        let off_scale = (0..1000)
            .filter(|_| {
                let v = obf
                    .obfuscate_answer(&mut rng, &q, &Answer::Rating(5.0))
                    .unwrap()
                    .answer
                    .as_f64()
                    .unwrap();
                !(1.0..=5.0).contains(&v)
            })
            .count();
        assert!(off_scale > 200, "only {off_scale}/1000 off scale — not unclamped?");
    }

    #[test]
    fn release_kind_records_sigma_and_sensitivity() {
        let mut rng = ChaCha20Rng::seed_from_u64(4);
        let ob = Obfuscator::new(PrivacyLevel::Medium)
            .obfuscate_answer(&mut rng, &rating_q(), &Answer::Rating(2.0))
            .unwrap();
        assert_eq!(
            ob.release,
            ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0
            }
        );
    }

    #[test]
    fn free_text_is_rejected() {
        let q = Question {
            id: QuestionId(0),
            text: "say anything".into(),
            kind: QuestionKind::FreeText,
            sensitive: false,
        };
        let mut rng = ChaCha20Rng::seed_from_u64(5);
        let err = Obfuscator::new(PrivacyLevel::Low)
            .obfuscate_answer(&mut rng, &q, &Answer::Text("hi".into()))
            .unwrap_err();
        assert_eq!(err, ObfuscationError::NotObfuscatable);
    }

    #[test]
    fn invalid_answer_rejected_before_noise() {
        let mut rng = ChaCha20Rng::seed_from_u64(6);
        let err = Obfuscator::new(PrivacyLevel::Low)
            .obfuscate_answer(&mut rng, &rating_q(), &Answer::Rating(7.0))
            .unwrap_err();
        assert!(matches!(err, ObfuscationError::InvalidAnswer(_)));
    }

    #[test]
    fn multiple_choice_uses_randomized_response() {
        let q = Question {
            id: QuestionId(0),
            text: "pick".into(),
            kind: QuestionKind::MultipleChoice {
                options: (0..4).map(|i| format!("opt{i}")).collect(),
            },
            sensitive: false,
        };
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let obf = Obfuscator::new(PrivacyLevel::High);
        let n = 30_000;
        let mut kept = 0;
        for _ in 0..n {
            let ob = obf.obfuscate_answer(&mut rng, &q, &Answer::Choice(2)).unwrap();
            assert!(matches!(ob.release, ReleaseKind::Pure { .. }));
            if ob.answer == Answer::Choice(2) {
                kept += 1;
            }
        }
        let eps = PrivacyLevel::High.randomized_response_epsilon().unwrap();
        let want = eps.exp() / (eps.exp() + 3.0);
        let got = kept as f64 / n as f64;
        assert!((got - want).abs() < 0.01, "truth rate {got} vs {want}");
    }

    #[test]
    fn numeric_questions_scale_noise_to_range() {
        let q = Question {
            id: QuestionId(0),
            text: "year".into(),
            kind: QuestionKind::Numeric {
                min: 1940,
                max: 2000,
            },
            sensitive: true,
        };
        let mut rng = ChaCha20Rng::seed_from_u64(8);
        let obf = Obfuscator::new(PrivacyLevel::Medium);
        let n = 20_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let v = obf
                .obfuscate_answer(&mut rng, &q, &Answer::Numeric(1970))
                .unwrap()
                .answer
                .as_f64()
                .unwrap();
            sum_sq += (v - 1970.0).powi(2);
        }
        let emp = (sum_sq / n as f64).sqrt();
        let want = PrivacyLevel::Medium.sigma_for_range(60.0); // 15.0
        assert!((emp - want).abs() < 0.5, "σ {emp} vs {want}");
    }

    #[test]
    fn whole_response_obfuscation() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        b.question("rate a", QuestionKind::likert5(), false);
        b.question("rate b", QuestionKind::likert5(), false);
        b.question("comment", QuestionKind::FreeText, false);
        let s = b.build().unwrap();
        let mut raw = Response::new("u1", s.id);
        raw.answer(QuestionId(0), Answer::Rating(4.0));
        raw.answer(QuestionId(1), Answer::Rating(2.0));
        raw.answer(QuestionId(2), Answer::Text("fine".into()));

        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let (upload, releases) = Obfuscator::new(PrivacyLevel::Medium)
            .obfuscate_response(&mut rng, &s, &raw)
            .unwrap();

        // Two ledger entries (free text contributes none).
        assert_eq!(releases.len(), 2);
        assert!(releases.iter().all(|(tag, _)| tag.starts_with("survey-1/")));
        // Ratings obfuscated, text passed through.
        assert!(upload.get(QuestionId(0)).unwrap().is_obfuscated());
        assert!(upload.get(QuestionId(1)).unwrap().is_obfuscated());
        assert_eq!(upload.get(QuestionId(2)), Some(&Answer::Text("fine".into())));
        // Noisy values differ from the raw ones (σ=1; equality has
        // probability zero).
        assert_ne!(upload.get(QuestionId(0)).unwrap().as_f64(), Some(4.0));
    }

    #[test]
    fn discrete_method_uploads_integers() {
        let mut rng = ChaCha20Rng::seed_from_u64(20);
        let obf =
            Obfuscator::new(PrivacyLevel::Medium).with_method(ObfuscationMethod::DiscreteInteger);
        let q = rating_q();
        let mut saw_noise = false;
        for _ in 0..200 {
            let ob = obf
                .obfuscate_answer(&mut rng, &q, &Answer::Rating(3.0))
                .unwrap();
            let v = ob.answer.as_f64().unwrap();
            assert_eq!(v, v.round(), "discrete upload {v} is not an integer");
            assert!(matches!(ob.release, ReleaseKind::Gaussian { .. }));
            if v != 3.0 {
                saw_noise = true;
            }
        }
        assert!(saw_noise, "discrete Gaussian never perturbed");
    }

    #[test]
    fn discrete_method_noise_magnitude_matches_sigma() {
        let mut rng = ChaCha20Rng::seed_from_u64(21);
        let obf =
            Obfuscator::new(PrivacyLevel::High).with_method(ObfuscationMethod::DiscreteInteger);
        let q = rating_q();
        let n = 30_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let v = obf
                .obfuscate_answer(&mut rng, &q, &Answer::Rating(3.0))
                .unwrap()
                .answer
                .as_f64()
                .unwrap();
            sum_sq += (v - 3.0).powi(2);
        }
        let emp = (sum_sq / n as f64).sqrt();
        assert!((emp - 2.0).abs() < 0.1, "σ {emp} vs 2.0");
    }

    #[test]
    fn ordinal_method_stays_on_scale() {
        let mut rng = ChaCha20Rng::seed_from_u64(22);
        let obf = Obfuscator::new(PrivacyLevel::High)
            .with_method(ObfuscationMethod::OrdinalExponential);
        let q = rating_q();
        let mut histogram = [0u32; 5];
        for _ in 0..5_000 {
            let ob = obf
                .obfuscate_answer(&mut rng, &q, &Answer::Rating(4.0))
                .unwrap();
            let v = ob.answer.as_f64().unwrap();
            assert!((1.0..=5.0).contains(&v), "off-scale ordinal upload {v}");
            assert!(matches!(ob.release, ReleaseKind::Pure { .. }));
            histogram[(v as usize) - 1] += 1;
        }
        // Mode at the true answer, monotone decay away from it.
        assert!(histogram[3] > histogram[2] && histogram[2] > histogram[0]);
    }

    #[test]
    fn ordinal_none_level_passes_through() {
        let mut rng = ChaCha20Rng::seed_from_u64(23);
        let obf = Obfuscator::new(PrivacyLevel::None)
            .with_method(ObfuscationMethod::OrdinalExponential);
        let ob = obf
            .obfuscate_answer(&mut rng, &rating_q(), &Answer::Rating(2.0))
            .unwrap();
        assert_eq!(ob.answer, Answer::Obfuscated(2.0));
        assert_eq!(ob.release, ReleaseKind::Raw);
    }

    #[test]
    fn methods_serde_round_trip() {
        for m in [
            ObfuscationMethod::Continuous,
            ObfuscationMethod::DiscreteInteger,
            ObfuscationMethod::OrdinalExponential,
        ] {
            let json = serde_json::to_string(&m).unwrap();
            let back: ObfuscationMethod = serde_json::from_str(&json).unwrap();
            assert_eq!(m, back);
        }
        assert_eq!(
            serde_json::to_string(&ObfuscationMethod::OrdinalExponential).unwrap(),
            "\"ordinal_exponential\""
        );
    }

    #[test]
    fn incomplete_response_rejected() {
        let mut b = SurveyBuilder::new(SurveyId(1), "t");
        b.question("rate a", QuestionKind::likert5(), false);
        b.question("rate b", QuestionKind::likert5(), false);
        let s = b.build().unwrap();
        let mut raw = Response::new("u1", s.id);
        raw.answer(QuestionId(0), Answer::Rating(4.0));
        let mut rng = ChaCha20Rng::seed_from_u64(10);
        assert!(Obfuscator::new(PrivacyLevel::Low)
            .obfuscate_response(&mut rng, &s, &raw)
            .is_err());
    }
}
