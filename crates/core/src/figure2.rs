//! The Fig. 2 analysis: per-bin deviation from the overall mean.
//!
//! "We plot the difference between the mean rating obtained from a given
//! privacy bin and the overall mean rating. The figure also shows a
//! histogram of the number of students rating each lecturer per privacy
//! bin." This module computes exactly those series from a [`Trial`] (or
//! any per-bin sample map) and renders them as the text table the bench
//! binary prints.

use crate::privacy_level::PrivacyLevel;
use crate::trial::Trial;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One lecturer's row of the figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LecturerRow {
    /// Lecturer index (1-based in the rendered table, 0-based here).
    pub lecturer: usize,
    /// Overall mean of all uploaded ratings.
    pub overall_mean: f64,
    /// Ground-truth mean (for scoring; the paper could not print this).
    pub true_mean: f64,
    /// Per-bin (deviation from overall mean, respondent count); `None`
    /// deviation for an empty bin.
    pub bins: BTreeMap<PrivacyLevel, BinPoint>,
}

/// One (lecturer, bin) data point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinPoint {
    /// Bin mean minus overall mean (`None` when the bin is empty).
    pub deviation: Option<f64>,
    /// Number of students in the bin who rated this lecturer — the
    /// histogram series of Fig. 2.
    pub count: usize,
}

/// The full figure: one row per lecturer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Figure2 {
    /// Rows in lecturer order.
    pub rows: Vec<LecturerRow>,
}

impl Figure2 {
    /// Computes the figure from a trial.
    pub fn from_trial(trial: &Trial) -> Figure2 {
        let rows = (0..trial.lecturer_count())
            .map(|l| {
                let by_bin = trial.noisy_by_bin(l);
                Figure2::row(l, trial.true_mean(l), &by_bin)
            })
            .collect();
        Figure2 { rows }
    }

    /// Computes one row from per-bin samples.
    pub fn row(
        lecturer: usize,
        true_mean: f64,
        by_bin: &BTreeMap<PrivacyLevel, Vec<f64>>,
    ) -> LecturerRow {
        let all: Vec<f64> = by_bin.values().flatten().copied().collect();
        let overall_mean = if all.is_empty() {
            f64::NAN
        } else {
            all.iter().sum::<f64>() / all.len() as f64
        };
        let bins = PrivacyLevel::ALL
            .iter()
            .map(|&level| {
                let samples = by_bin.get(&level).map_or(&[][..], Vec::as_slice);
                let deviation = if samples.is_empty() || all.is_empty() {
                    None
                } else {
                    Some(samples.iter().sum::<f64>() / samples.len() as f64 - overall_mean)
                };
                (
                    level,
                    BinPoint {
                        deviation,
                        count: samples.len(),
                    },
                )
            })
            .collect();
        LecturerRow {
            lecturer,
            overall_mean,
            true_mean,
            bins,
        }
    }

    /// Mean absolute deviation per privacy bin across lecturers — the
    /// summary statistic behind the paper's observation that "the accuracy
    /// … is lower when fewer users are assigned to the bin, particularly
    /// for higher privacy bins".
    pub fn mean_abs_deviation(&self) -> BTreeMap<PrivacyLevel, f64> {
        let mut sums: BTreeMap<PrivacyLevel, (f64, usize)> = BTreeMap::new();
        for row in &self.rows {
            for (&level, point) in &row.bins {
                if let Some(d) = point.deviation {
                    let e = sums.entry(level).or_insert((0.0, 0));
                    e.0 += d.abs();
                    e.1 += 1;
                }
            }
        }
        sums.into_iter()
            .map(|(l, (s, n))| (l, if n == 0 { 0.0 } else { s / n as f64 }))
            .collect()
    }

    /// Exports the figure as CSV (one row per lecturer; deviation and
    /// count columns per bin) for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "lecturer,overall_mean,true_mean,dev_none,dev_low,dev_medium,dev_high,n_none,n_low,n_medium,n_high\n",
        );
        for row in &self.rows {
            let dev = |l: PrivacyLevel| {
                row.bins[&l]
                    .deviation
                    .map_or(String::new(), |d| format!("{d:.6}"))
            };
            let _ = writeln!(
                out,
                "{},{:.6},{:.6},{},{},{},{},{},{},{},{}",
                row.lecturer + 1,
                row.overall_mean,
                row.true_mean,
                dev(PrivacyLevel::None),
                dev(PrivacyLevel::Low),
                dev(PrivacyLevel::Medium),
                dev(PrivacyLevel::High),
                row.bins[&PrivacyLevel::None].count,
                row.bins[&PrivacyLevel::Low].count,
                row.bins[&PrivacyLevel::Medium].count,
                row.bins[&PrivacyLevel::High].count,
            );
        }
        out
    }

    /// Renders the figure as a fixed-width text table (deviation series
    /// then histogram), the form the bench binary prints.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<9} {:>8} {:>8} | {:>8} {:>8} {:>8} {:>8} | {:>4} {:>4} {:>4} {:>4}",
            "lecturer", "overall", "true", "d(none)", "d(low)", "d(med)", "d(high)", "#n", "#l",
            "#m", "#h"
        );
        for row in &self.rows {
            let dev = |l: PrivacyLevel| match row.bins[&l].deviation {
                Some(d) => format!("{d:+.3}"),
                None => "--".to_string(),
            };
            let cnt = |l: PrivacyLevel| row.bins[&l].count;
            let _ = writeln!(
                out,
                "{:<9} {:>8.3} {:>8.3} | {:>8} {:>8} {:>8} {:>8} | {:>4} {:>4} {:>4} {:>4}",
                row.lecturer + 1,
                row.overall_mean,
                row.true_mean,
                dev(PrivacyLevel::None),
                dev(PrivacyLevel::Low),
                dev(PrivacyLevel::Medium),
                dev(PrivacyLevel::High),
                cnt(PrivacyLevel::None),
                cnt(PrivacyLevel::Low),
                cnt(PrivacyLevel::Medium),
                cnt(PrivacyLevel::High),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trial::TrialConfig;

    fn figure() -> Figure2 {
        Figure2::from_trial(&Trial::generate(TrialConfig::default()))
    }

    #[test]
    fn one_row_per_lecturer() {
        let f = figure();
        assert_eq!(f.rows.len(), 13);
        for (i, row) in f.rows.iter().enumerate() {
            assert_eq!(row.lecturer, i);
            assert_eq!(row.bins.len(), 4);
        }
    }

    #[test]
    fn bin_counts_sum_to_raters() {
        let t = Trial::generate(TrialConfig::default());
        let f = Figure2::from_trial(&t);
        for (l, row) in f.rows.iter().enumerate() {
            let total: usize = row.bins.values().map(|p| p.count).sum();
            assert_eq!(total, t.noisy_ratings(l).len());
        }
    }

    #[test]
    fn deviations_are_relative_to_overall() {
        // Weighted (by count) deviations must sum to ~0 per lecturer.
        let f = figure();
        for row in &f.rows {
            let weighted: f64 = row
                .bins
                .values()
                .filter_map(|p| p.deviation.map(|d| d * p.count as f64))
                .sum();
            assert!(weighted.abs() < 1e-9, "row {} sum {weighted}", row.lecturer);
        }
    }

    #[test]
    fn higher_privacy_bins_deviate_more_on_average() {
        // Average over many seeds to beat sampling noise: |dev| must be
        // larger for High (σ=2, n=30) than for None (σ=0, n=18)… actually
        // None has a *smaller* bin; the clean comparison is Low (n=32,
        // σ=0.5) vs High (n=30, σ=2.0): same-ish n, 4× the noise.
        let mut low_total = 0.0;
        let mut high_total = 0.0;
        for seed in 0..30 {
            let f = Figure2::from_trial(&Trial::generate(TrialConfig {
                seed,
                ..TrialConfig::default()
            }));
            let mad = f.mean_abs_deviation();
            low_total += mad[&PrivacyLevel::Low];
            high_total += mad[&PrivacyLevel::High];
        }
        assert!(
            high_total > low_total * 1.5,
            "high {high_total} not ≫ low {low_total}"
        );
    }

    #[test]
    fn empty_bin_renders_dashes() {
        let mut by_bin: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
        by_bin.insert(PrivacyLevel::None, vec![4.0, 4.2]);
        let row = Figure2::row(0, 4.0, &by_bin);
        assert_eq!(row.bins[&PrivacyLevel::High].count, 0);
        assert_eq!(row.bins[&PrivacyLevel::High].deviation, None);
        let f = Figure2 { rows: vec![row] };
        assert!(f.render().contains("--"));
    }

    #[test]
    fn render_has_header_and_rows() {
        let f = figure();
        let text = f.render();
        assert!(text.starts_with("lecturer"));
        assert_eq!(text.lines().count(), 14); // header + 13 rows
    }

    #[test]
    fn csv_has_header_and_13_rows() {
        let f = figure();
        let csv = f.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 14);
        assert!(lines[0].starts_with("lecturer,overall_mean"));
        // Every data row has 11 comma-separated fields.
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), 11, "bad row: {line}");
        }
        // Empty bins leave an empty deviation field, not a NaN.
        assert!(!csv.contains("NaN"));
    }

    #[test]
    fn overall_mean_tracks_truth() {
        let f = figure();
        for row in &f.rows {
            assert!(
                (row.overall_mean - row.true_mean).abs() < 0.45,
                "lecturer {}: overall {} vs true {}",
                row.lecturer,
                row.overall_mean,
                row.true_mean
            );
        }
    }
}
