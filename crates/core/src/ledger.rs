//! Cumulative privacy accounting and budget balancing across the user base.
//!
//! §3.1: the framework ensures "the cumulative privacy loss can be tracked
//! and balanced across the user base, while ensuring sufficient accuracy
//! of the aggregated response". Tracking is [`loki_dp::Accountant`];
//! *balancing* is this module's [`BudgetBalancer`]: when a new survey
//! needs `n` respondents, invite the users who have lost the least so
//! far, rather than whoever shows up — flattening the loss distribution.
//!
//! EXP-6 compares [`AllocationStrategy::LeastLoss`] against
//! [`AllocationStrategy::Uniform`] (status quo: random recruitment).

use loki_dp::accountant::Accountant;
use loki_dp::params::Delta;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How respondents are selected for a new survey.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocationStrategy {
    /// Uniformly random recruitment (what an open marketplace does).
    Uniform,
    /// Invite the users with the smallest cumulative ε first.
    LeastLoss,
}

/// Selects survey respondents so cumulative loss stays balanced.
#[derive(Debug)]
pub struct BudgetBalancer {
    strategy: AllocationStrategy,
    delta: Delta,
}

impl BudgetBalancer {
    /// Creates a balancer.
    pub fn new(strategy: AllocationStrategy) -> BudgetBalancer {
        BudgetBalancer {
            strategy,
            delta: Delta::new(loki_dp::DEFAULT_DELTA),
        }
    }

    /// The strategy in use.
    pub fn strategy(&self) -> AllocationStrategy {
        self.strategy
    }

    /// Picks `n` users (by id) from `users` to invite to the next survey.
    ///
    /// For [`AllocationStrategy::LeastLoss`] users are ranked by current
    /// cumulative ε in `accountant` (ties broken by id for determinism);
    /// for [`AllocationStrategy::Uniform`] the choice is a random sample.
    ///
    /// # Panics
    /// Panics if `n > users.len()`.
    pub fn select<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        accountant: &Accountant,
        users: &[String],
        n: usize,
    ) -> Vec<String> {
        assert!(
            n <= users.len(),
            "cannot select {n} of {} users",
            users.len()
        );
        match self.strategy {
            AllocationStrategy::Uniform => {
                let mut pool: Vec<&String> = users.iter().collect();
                pool.shuffle(rng);
                pool.into_iter().take(n).cloned().collect()
            }
            AllocationStrategy::LeastLoss => {
                let mut ranked: Vec<(&String, f64)> = users
                    .iter()
                    .map(|u| (u, accountant.loss_of(u, self.delta).epsilon.value()))
                    .collect();
                ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)));
                ranked.into_iter().take(n).map(|(u, _)| u.clone()).collect()
            }
        }
    }

    /// Summary of the current loss distribution (max/mean and the
    /// p50/p95/p99 quantiles) over the given users. Infinite losses
    /// propagate to max/mean.
    pub fn loss_summary(&self, accountant: &Accountant, users: &[String]) -> LossSummary {
        let mut losses: Vec<f64> = users
            .iter()
            .map(|u| accountant.loss_of(u, self.delta).epsilon.value())
            .collect();
        losses.sort_by(f64::total_cmp);
        let n = losses.len();
        let max = losses.last().copied().unwrap_or(0.0);
        let mean = if n == 0 {
            0.0
        } else {
            losses.iter().sum::<f64>() / n as f64
        };
        LossSummary {
            max,
            mean,
            p50: quantile_sorted(&losses, 0.50),
            p95: quantile_sorted(&losses, 0.95),
            p99: quantile_sorted(&losses, 0.99),
        }
    }
}

/// Nearest-rank quantile of an ascending-sorted slice (0 when empty).
fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.saturating_sub(1).min(sorted.len().saturating_sub(1));
    sorted.get(idx).copied().unwrap_or(0.0)
}

/// Distribution summary of cumulative ε across users.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossSummary {
    /// Largest cumulative ε.
    pub max: f64,
    /// Mean cumulative ε.
    pub mean: f64,
    /// Median cumulative ε.
    #[serde(default)]
    pub p50: f64,
    /// 95th percentile cumulative ε.
    pub p95: f64,
    /// 99th percentile cumulative ε.
    #[serde(default)]
    pub p99: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_dp::accountant::ReleaseKind;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    fn users(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("u{i:03}")).collect()
    }

    fn gaussian() -> ReleaseKind {
        ReleaseKind::Gaussian {
            sigma: 1.0,
            sensitivity: 4.0,
        }
    }

    #[test]
    fn least_loss_prefers_fresh_users() {
        let acc = Accountant::new();
        let us = users(10);
        // Burden the first five users.
        for u in &us[..5] {
            acc.record(u, "s1/q1", gaussian());
        }
        let b = BudgetBalancer::new(AllocationStrategy::LeastLoss);
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let picked = b.select(&mut rng, &acc, &us, 5);
        let expected: Vec<String> = us[5..].to_vec();
        assert_eq!(picked, expected);
    }

    #[test]
    fn least_loss_is_deterministic_on_ties() {
        let acc = Accountant::new();
        let us = users(6);
        let b = BudgetBalancer::new(AllocationStrategy::LeastLoss);
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        let a = b.select(&mut rng, &acc, &us, 3);
        let c = b.select(&mut rng, &acc, &us, 3);
        assert_eq!(a, c);
        assert_eq!(a, vec!["u000", "u001", "u002"]);
    }

    #[test]
    fn uniform_selection_varies_with_rng() {
        let acc = Accountant::new();
        let us = users(50);
        let b = BudgetBalancer::new(AllocationStrategy::Uniform);
        let pick = |seed| {
            let mut rng = ChaCha20Rng::seed_from_u64(seed);
            b.select(&mut rng, &acc, &us, 10)
        };
        assert_ne!(pick(1), pick(2));
        assert_eq!(pick(3), pick(3));
    }

    #[test]
    fn balancing_flattens_the_distribution() {
        // Run 20 rounds of 10-user surveys over 40 users with each
        // strategy; LeastLoss must end with a smaller max ε.
        let run = |strategy| {
            let acc = Accountant::new();
            let us = users(40);
            let b = BudgetBalancer::new(strategy);
            let mut rng = ChaCha20Rng::seed_from_u64(7);
            for round in 0..20 {
                let picked = b.select(&mut rng, &acc, &us, 10);
                for u in picked {
                    acc.record(&u, format!("s{round}"), gaussian());
                }
            }
            b.loss_summary(&acc, &us).max
        };
        let uniform_max = run(AllocationStrategy::Uniform);
        let balanced_max = run(AllocationStrategy::LeastLoss);
        assert!(
            balanced_max < uniform_max,
            "balanced {balanced_max} !< uniform {uniform_max}"
        );
    }

    #[test]
    fn loss_summary_orders() {
        let acc = Accountant::new();
        let us = users(20);
        for (i, u) in us.iter().enumerate() {
            for _ in 0..i {
                acc.record(u, "t", gaussian());
            }
        }
        let b = BudgetBalancer::new(AllocationStrategy::LeastLoss);
        let s = b.loss_summary(&acc, &us);
        assert!(s.max >= s.p99 && s.p99 >= s.p95 && s.p95 >= s.p50, "{s:?}");
        assert!(s.p95 >= s.mean && s.mean > 0.0);
    }

    #[test]
    fn empty_summary_is_zero() {
        let acc = Accountant::new();
        let b = BudgetBalancer::new(AllocationStrategy::Uniform);
        let s = b.loss_summary(&acc, &[]);
        assert_eq!((s.max, s.mean, s.p50, s.p95, s.p99), (0.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "cannot select")]
    fn overselection_rejected() {
        let acc = Accountant::new();
        let b = BudgetBalancer::new(AllocationStrategy::Uniform);
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let _ = b.select(&mut rng, &acc, &users(3), 4);
    }
}
