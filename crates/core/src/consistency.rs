//! Cross-bin consistency checking.
//!
//! §3.2 validates accuracy "by comparing the ratings across the various
//! privacy bins in our system": if the platform works, every bin is an
//! unbiased (differently-noisy) estimate of the same true mean, so the
//! bin means must agree up to their predicted standard errors. This
//! module makes that check a statistic:
//!
//! * the weighted sum of squared standardized deviations from the pooled
//!   mean, `T = Σ_b (m_b − m̂)² / SE_b²`, is asymptotically χ² with
//!   (bins − 1) degrees of freedom under the "one common mean"
//!   hypothesis;
//! * a small p-value flags either a broken obfuscator (wrong σ), a
//!   biased estimator, or privacy-level-correlated answers (e.g. users
//!   who pick *high* genuinely rate differently — a selection effect the
//!   paper's trial design would care about).

use crate::estimator::{Estimator, PooledEstimate};
use crate::privacy_level::PrivacyLevel;
use loki_dp::special::chi_square_cdf;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of a cross-bin consistency test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyReport {
    /// The χ² statistic.
    pub statistic: f64,
    /// Degrees of freedom (non-empty bins − 1).
    pub degrees_of_freedom: u32,
    /// P(χ²_df ≥ statistic): small ⇒ bins disagree beyond their noise.
    pub p_value: f64,
    /// Per-bin standardized deviations from the pooled mean.
    pub z_scores: Vec<(PrivacyLevel, f64)>,
    /// The pooled estimate the bins were compared against.
    pub pooled: PooledEstimate,
}

impl ConsistencyReport {
    /// Whether the bins are consistent at the given significance level
    /// (e.g. `0.05`).
    pub fn consistent_at(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// Runs the cross-bin consistency test.
///
/// Returns `None` when fewer than two bins are non-empty (nothing to
/// compare).
pub fn cross_bin_test(
    estimator: &Estimator,
    bins: &BTreeMap<PrivacyLevel, Vec<f64>>,
) -> Option<ConsistencyReport> {
    let non_empty = bins.values().filter(|v| !v.is_empty()).count();
    if non_empty < 2 {
        return None;
    }
    let pooled = estimator.pooled(bins);
    let mut statistic = 0.0;
    let mut z_scores = Vec::with_capacity(pooled.bins.len());
    for bin in &pooled.bins {
        let z = (bin.mean - pooled.mean) / bin.standard_error;
        statistic += z * z;
        z_scores.push((bin.level, z));
    }
    let df = (pooled.bins.len() - 1) as u32;
    let p_value = 1.0 - chi_square_cdf(statistic, df);
    Some(ConsistencyReport {
        statistic,
        degrees_of_freedom: df,
        p_value,
        z_scores,
        pooled,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_dp::sampling;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    const POP_STD: f64 = 0.8;

    fn bins_with_offsets(
        seed: u64,
        truth: f64,
        offsets: [f64; 4],
        n_per_bin: usize,
    ) -> BTreeMap<PrivacyLevel, Vec<f64>> {
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        PrivacyLevel::ALL
            .iter()
            .zip(offsets)
            .map(|(&level, offset)| {
                let samples = (0..n_per_bin)
                    .map(|_| {
                        let raw = sampling::gaussian(&mut rng, truth + offset, POP_STD);
                        sampling::gaussian(&mut rng, raw, level.sigma())
                    })
                    .collect();
                (level, samples)
            })
            .collect()
    }

    #[test]
    fn honest_bins_are_consistent() {
        let estimator = Estimator::new(POP_STD);
        let bins = bins_with_offsets(1, 3.8, [0.0; 4], 200);
        let report = cross_bin_test(&estimator, &bins).unwrap();
        assert_eq!(report.degrees_of_freedom, 3);
        assert!(
            report.consistent_at(0.01),
            "honest bins flagged: p = {}",
            report.p_value
        );
    }

    #[test]
    fn p_values_are_uniformish_under_null() {
        // Across many honest trials, p-values must not pile up near 0.
        let estimator = Estimator::new(POP_STD);
        let mut small = 0;
        let trials = 200;
        for seed in 0..trials {
            let bins = bins_with_offsets(seed, 3.5, [0.0; 4], 100);
            let report = cross_bin_test(&estimator, &bins).unwrap();
            if report.p_value < 0.05 {
                small += 1;
            }
        }
        // Expect ~5% (±); allow generous slack for the asymptotics.
        assert!(
            small <= trials / 5,
            "{small}/{trials} null trials rejected at 5%"
        );
    }

    #[test]
    fn biased_bin_is_detected() {
        // The high bin answers a full point higher (selection effect):
        // the test must catch it with a large sample.
        let estimator = Estimator::new(POP_STD);
        let bins = bins_with_offsets(3, 3.5, [0.0, 0.0, 0.0, 1.0], 400);
        let report = cross_bin_test(&estimator, &bins).unwrap();
        assert!(
            !report.consistent_at(0.01),
            "biased bin not detected: p = {}",
            report.p_value
        );
        // The offending bin carries the largest |z|.
        let (worst, _) = report
            .z_scores
            .iter()
            .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
            .unwrap();
        assert_eq!(*worst, PrivacyLevel::High);
    }

    #[test]
    fn miscalibrated_sigma_is_detected() {
        // Simulate a broken client that adds 3σ noise while declaring σ:
        // the high bin scatters far beyond its predicted SE. A *mean*
        // test only catches this via variance, so inflate the check with
        // many trials: the p-value distribution must skew low.
        let estimator = Estimator::new(POP_STD);
        let mut rejections = 0;
        let trials = 100;
        for seed in 0..trials {
            let mut rng = ChaCha20Rng::seed_from_u64(900 + seed);
            let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
            for level in PrivacyLevel::ALL {
                let broken_sigma = level.sigma() * 3.0;
                let samples = (0..80)
                    .map(|_| {
                        let raw = sampling::gaussian(&mut rng, 3.5, POP_STD);
                        sampling::gaussian(&mut rng, raw, broken_sigma)
                    })
                    .collect();
                bins.insert(level, samples);
            }
            let report = cross_bin_test(&estimator, &bins).unwrap();
            if !report.consistent_at(0.05) {
                rejections += 1;
            }
        }
        assert!(
            rejections > trials / 4,
            "3x-miscalibrated noise rejected only {rejections}/{trials} times"
        );
    }

    #[test]
    fn single_bin_yields_none() {
        let estimator = Estimator::new(POP_STD);
        let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
        bins.insert(PrivacyLevel::Low, vec![3.0, 3.5]);
        assert!(cross_bin_test(&estimator, &bins).is_none());
        bins.insert(PrivacyLevel::High, Vec::new());
        assert!(cross_bin_test(&estimator, &bins).is_none());
    }

    #[test]
    fn trial_bins_pass_the_test() {
        // The generated Fig. 2 trial must look consistent to its own
        // validator for most lecturers (all-lecturers-pass would be a
        // p-hacking smell across 13 tests).
        let trial = crate::trial::Trial::generate(crate::trial::TrialConfig::default());
        let estimator = Estimator::new(0.8);
        let mut passes = 0;
        for l in 0..trial.lecturer_count() {
            let report = cross_bin_test(&estimator, &trial.noisy_by_bin(l)).unwrap();
            if report.consistent_at(0.01) {
                passes += 1;
            }
        }
        assert!(
            passes >= trial.lecturer_count() - 2,
            "only {passes}/13 lecturers consistent"
        );
    }
}
