//! Server-side estimation from obfuscated responses.
//!
//! The server receives noisy ratings grouped by privacy bin (every user
//! answered under exactly one level). Because Gaussian noise is zero-mean
//! and unclamped, the per-bin sample mean is unbiased; the pooled estimate
//! combines bins by inverse variance, weighting a noiseless response more
//! than a high-privacy one. §3.2's accuracy validation (4.72 vs 4.61) and
//! Fig. 2 both come out of this module.

use crate::privacy_level::PrivacyLevel;
use loki_dp::utility;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The estimate from one privacy bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinEstimate {
    /// The bin's privacy level.
    pub level: PrivacyLevel,
    /// Number of responses in the bin.
    pub n: usize,
    /// Sample mean of the (noisy) responses; `NaN` never appears — empty
    /// bins produce no estimate at all.
    pub mean: f64,
    /// Predicted standard error of `mean` given the bin's noise σ and an
    /// assumed population spread.
    pub standard_error: f64,
}

/// The pooled estimate across bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PooledEstimate {
    /// Inverse-variance weighted mean.
    pub mean: f64,
    /// Predicted standard error of the pooled mean.
    pub standard_error: f64,
    /// Per-bin detail.
    pub bins: Vec<BinEstimate>,
    /// Total responses across bins.
    pub n_total: usize,
}

/// Estimates means from per-bin noisy samples.
///
/// `pop_std` is the assumed intrinsic spread of true answers (rater
/// disagreement); it only affects weights and error bars, not the
/// unbiasedness of the means.
#[derive(Debug, Clone, Copy)]
pub struct Estimator {
    /// Assumed population spread of true answers.
    pub pop_std: f64,
}

impl Default for Estimator {
    fn default() -> Self {
        // Rater spread on a 1–5 scale is typically just under one point.
        Estimator { pop_std: 0.8 }
    }
}

impl Estimator {
    /// Creates an estimator with a given assumed population spread.
    ///
    /// # Panics
    /// Panics if `pop_std` is not strictly positive.
    pub fn new(pop_std: f64) -> Estimator {
        assert!(pop_std > 0.0, "population spread must be positive");
        Estimator { pop_std }
    }

    /// Per-bin estimate; returns `None` for an empty bin.
    pub fn bin_estimate(&self, level: PrivacyLevel, samples: &[f64]) -> Option<BinEstimate> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let se = utility::mean_standard_error(self.pop_std, level.sigma(), n);
        Some(BinEstimate {
            level,
            n,
            mean,
            standard_error: se,
        })
    }

    /// Pooled estimate across bins, weighting each bin by the inverse of
    /// its per-response variance.
    ///
    /// # Panics
    /// Panics if every bin is empty.
    pub fn pooled(&self, bins: &BTreeMap<PrivacyLevel, Vec<f64>>) -> PooledEstimate {
        let estimates: Vec<BinEstimate> = bins
            .iter()
            .filter_map(|(level, samples)| self.bin_estimate(*level, samples))
            .collect();
        assert!(!estimates.is_empty(), "cannot pool zero responses");

        let weight_input: Vec<(usize, f64)> = estimates
            .iter()
            .map(|b| (b.n, b.level.sigma()))
            .collect();
        let weights = utility::inverse_variance_weights(self.pop_std, &weight_input);

        let mean = estimates
            .iter()
            .zip(&weights)
            .map(|(b, w)| b.mean * w)
            .sum::<f64>();
        // Var of weighted mean = Σ w² · SE²; with inverse-variance weights
        // this equals 1/Σ(1/SE²).
        let inv_var: f64 = estimates
            .iter()
            .map(|b| 1.0 / (b.standard_error * b.standard_error))
            .sum();
        let n_total = estimates.iter().map(|b| b.n).sum();
        PooledEstimate {
            mean,
            standard_error: (1.0 / inv_var).sqrt(),
            bins: estimates,
            n_total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_dp::sampling;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    /// Synthesizes a bin of noisy samples around `truth`.
    fn bin(
        rng: &mut ChaCha20Rng,
        truth: f64,
        pop_std: f64,
        level: PrivacyLevel,
        n: usize,
    ) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let raw = sampling::gaussian(rng, truth, pop_std);
                sampling::gaussian(rng, raw, level.sigma())
            })
            .collect()
    }

    #[test]
    fn empty_bin_yields_none() {
        let e = Estimator::default();
        assert!(e.bin_estimate(PrivacyLevel::Low, &[]).is_none());
    }

    #[test]
    fn bin_mean_is_unbiased() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let e = Estimator::new(0.8);
        let samples = bin(&mut rng, 4.2, 0.8, PrivacyLevel::High, 50_000);
        let est = e.bin_estimate(PrivacyLevel::High, &samples).unwrap();
        assert!((est.mean - 4.2).abs() < 0.03, "mean {}", est.mean);
    }

    #[test]
    fn standard_error_grows_with_level_and_shrinks_with_n() {
        let e = Estimator::new(0.8);
        let low = e.bin_estimate(PrivacyLevel::Low, &vec![3.0; 30]).unwrap();
        let high = e.bin_estimate(PrivacyLevel::High, &vec![3.0; 30]).unwrap();
        assert!(high.standard_error > low.standard_error);
        let big = e.bin_estimate(PrivacyLevel::High, &vec![3.0; 300]).unwrap();
        assert!(big.standard_error < high.standard_error);
    }

    #[test]
    fn pooled_mean_near_truth_with_paper_bins() {
        // The paper's empirical uptake: 18 none / 32 low / 51 medium /
        // 30 high, n=131. The pooled estimate should recover the truth to
        // well under 0.2 on average — §3.2's anecdote saw |4.72−4.61| = 0.11.
        let e = Estimator::new(0.8);
        let truth = 4.61;
        let mut total_abs_err = 0.0;
        let trials = 200;
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        for _ in 0..trials {
            let mut bins = BTreeMap::new();
            bins.insert(PrivacyLevel::None, bin(&mut rng, truth, 0.4, PrivacyLevel::None, 18));
            bins.insert(PrivacyLevel::Low, bin(&mut rng, truth, 0.4, PrivacyLevel::Low, 32));
            bins.insert(PrivacyLevel::Medium, bin(&mut rng, truth, 0.4, PrivacyLevel::Medium, 51));
            bins.insert(PrivacyLevel::High, bin(&mut rng, truth, 0.4, PrivacyLevel::High, 30));
            let pooled = e.pooled(&bins);
            total_abs_err += (pooled.mean - truth).abs();
            assert_eq!(pooled.n_total, 131);
        }
        let mae = total_abs_err / trials as f64;
        assert!(mae < 0.15, "mean abs error {mae}");
    }

    #[test]
    fn pooling_beats_best_single_bin() {
        // Pooled SE must be at most the smallest per-bin SE.
        let e = Estimator::new(0.8);
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut bins = BTreeMap::new();
        bins.insert(PrivacyLevel::None, bin(&mut rng, 3.0, 0.8, PrivacyLevel::None, 18));
        bins.insert(PrivacyLevel::High, bin(&mut rng, 3.0, 0.8, PrivacyLevel::High, 30));
        let pooled = e.pooled(&bins);
        let best = pooled
            .bins
            .iter()
            .map(|b| b.standard_error)
            .fold(f64::INFINITY, f64::min);
        assert!(pooled.standard_error <= best + 1e-12);
    }

    #[test]
    fn pooled_skips_empty_bins() {
        let e = Estimator::default();
        let mut bins = BTreeMap::new();
        bins.insert(PrivacyLevel::None, vec![4.0, 4.0]);
        bins.insert(PrivacyLevel::High, Vec::new());
        let pooled = e.pooled(&bins);
        assert_eq!(pooled.bins.len(), 1);
        assert_eq!(pooled.n_total, 2);
        assert!((pooled.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot pool zero responses")]
    fn pooling_nothing_panics() {
        let e = Estimator::default();
        let bins = BTreeMap::new();
        let _ = e.pooled(&bins);
    }

    #[test]
    #[should_panic(expected = "spread must be positive")]
    fn zero_pop_std_rejected() {
        let _ = Estimator::new(0.0);
    }
}
