//! Server-side estimation from obfuscated responses.
//!
//! The server receives noisy ratings grouped by privacy bin (every user
//! answered under exactly one level). Because Gaussian noise is zero-mean
//! and unclamped, the per-bin sample mean is unbiased; the pooled estimate
//! combines bins by inverse variance, weighting a noiseless response more
//! than a high-privacy one. §3.2's accuracy validation (4.72 vs 4.61) and
//! Fig. 2 both come out of this module.

use crate::privacy_level::PrivacyLevel;
use loki_dp::utility;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Mergeable sufficient statistics for one privacy bin — everything the
/// estimator needs, with the raw samples thrown away.
///
/// The streaming aggregation layer maintains one of these per
/// (survey, question, level) inside the shard-local apply step; a read
/// merges `O(shards)` of them instead of rescanning submissions. The
/// invariant that makes the swap exact: `push` accumulates `sum` in
/// arrival order, which is the same order the legacy scan summed samples
/// in, so `mean()` is bitwise-identical to the scan's mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinStats {
    /// Number of responses folded in.
    pub n: u64,
    /// Running sum of responses (arrival order).
    pub sum: f64,
    /// Running sum of squared responses.
    pub sum_sq: f64,
    /// Smallest response seen (`+∞` when empty).
    pub min: f64,
    /// Largest response seen (`−∞` when empty).
    pub max: f64,
}

impl Default for BinStats {
    fn default() -> Self {
        BinStats::EMPTY
    }
}

impl BinStats {
    /// The identity element for [`BinStats::merge`].
    pub const EMPTY: BinStats = BinStats {
        n: 0,
        sum: 0.0,
        sum_sq: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    /// Folds one response in.
    pub fn push(&mut self, value: f64) {
        self.n += 1;
        self.sum += value;
        self.sum_sq += value * value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another bin's statistics in (shard merge).
    pub fn merge(&mut self, other: &BinStats) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Sample mean, `None` when empty or non-finite.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            return None;
        }
        let mean = self.sum / self.n as f64;
        mean.is_finite().then_some(mean)
    }

    /// Sample variance (population form), `None` when empty.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        let var = self.sum_sq / self.n as f64 - mean * mean;
        Some(var.max(0.0))
    }

    /// Builds the statistics from a slice of samples (the legacy scan's
    /// view), folding in arrival order.
    pub fn from_samples(samples: &[f64]) -> BinStats {
        let mut stats = BinStats::EMPTY;
        for &v in samples {
            stats.push(v);
        }
        stats
    }
}

/// The estimate from one privacy bin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BinEstimate {
    /// The bin's privacy level.
    pub level: PrivacyLevel,
    /// Number of responses in the bin.
    pub n: usize,
    /// Sample mean of the (noisy) responses; `NaN` never appears — empty
    /// bins produce no estimate at all.
    pub mean: f64,
    /// Predicted standard error of `mean` given the bin's noise σ and an
    /// assumed population spread.
    pub standard_error: f64,
}

/// The pooled estimate across bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PooledEstimate {
    /// Inverse-variance weighted mean.
    pub mean: f64,
    /// Predicted standard error of the pooled mean.
    pub standard_error: f64,
    /// Per-bin detail.
    pub bins: Vec<BinEstimate>,
    /// Total responses across bins.
    pub n_total: usize,
}

/// Estimates means from per-bin noisy samples.
///
/// `pop_std` is the assumed intrinsic spread of true answers (rater
/// disagreement); it only affects weights and error bars, not the
/// unbiasedness of the means.
#[derive(Debug, Clone, Copy)]
pub struct Estimator {
    /// Assumed population spread of true answers.
    pub pop_std: f64,
}

impl Default for Estimator {
    fn default() -> Self {
        // Rater spread on a 1–5 scale is typically just under one point.
        Estimator { pop_std: 0.8 }
    }
}

impl Estimator {
    /// Creates an estimator with a given assumed population spread.
    ///
    /// # Panics
    /// Panics if `pop_std` is not strictly positive.
    pub fn new(pop_std: f64) -> Estimator {
        assert!(pop_std > 0.0, "population spread must be positive");
        Estimator { pop_std }
    }

    /// Per-bin estimate; returns `None` for an empty bin.
    pub fn bin_estimate(&self, level: PrivacyLevel, samples: &[f64]) -> Option<BinEstimate> {
        // `BinStats::from_samples` folds in the same order `iter().sum()`
        // did, so this is the exact value the pre-streaming scan computed.
        self.bin_estimate_stats(level, &BinStats::from_samples(samples))
    }

    /// Per-bin estimate from sufficient statistics; `None` for an empty
    /// bin or a non-finite accumulated mean.
    pub fn bin_estimate_stats(&self, level: PrivacyLevel, stats: &BinStats) -> Option<BinEstimate> {
        let mean = stats.mean()?;
        let n = usize::try_from(stats.n).ok()?;
        let se = utility::mean_standard_error(self.pop_std, level.sigma(), n);
        Some(BinEstimate {
            level,
            n,
            mean,
            standard_error: se,
        })
    }

    /// Pooled estimate across bins, weighting each bin by the inverse of
    /// its per-response variance.
    ///
    /// # Panics
    /// Panics if every bin is empty. Use [`Estimator::pooled_checked`]
    /// where "no responses yet" is a reachable state rather than a bug.
    pub fn pooled(&self, bins: &BTreeMap<PrivacyLevel, Vec<f64>>) -> PooledEstimate {
        match self.pooled_checked(bins) {
            Some(est) => est,
            None => panic!("cannot pool zero responses"),
        }
    }

    /// Pooled estimate across bins; `None` when every bin is empty
    /// (instead of the panic `pooled` keeps for legacy callers).
    pub fn pooled_checked(&self, bins: &BTreeMap<PrivacyLevel, Vec<f64>>) -> Option<PooledEstimate> {
        let estimates: Vec<BinEstimate> = bins
            .iter()
            .filter_map(|(level, samples)| self.bin_estimate(*level, samples))
            .collect();
        self.pool_estimates(estimates)
    }

    /// Pooled estimate from per-bin sufficient statistics; `None` when
    /// every bin is empty. Streaming reads and the legacy scan both reach
    /// [`Estimator::pool_estimates`] through identical `BinEstimate`
    /// values, so their outputs agree bitwise.
    pub fn pooled_stats(&self, bins: &BTreeMap<PrivacyLevel, BinStats>) -> Option<PooledEstimate> {
        let estimates: Vec<BinEstimate> = bins
            .iter()
            .filter_map(|(level, stats)| self.bin_estimate_stats(*level, stats))
            .collect();
        self.pool_estimates(estimates)
    }

    /// Inverse-variance pooling over already-computed bin estimates —
    /// the single code path both the scan and streaming APIs share.
    fn pool_estimates(&self, estimates: Vec<BinEstimate>) -> Option<PooledEstimate> {
        if estimates.is_empty() {
            return None;
        }
        let weight_input: Vec<(usize, f64)> = estimates
            .iter()
            .map(|b| (b.n, b.level.sigma()))
            .collect();
        let weights = utility::inverse_variance_weights(self.pop_std, &weight_input);

        let mean = estimates
            .iter()
            .zip(&weights)
            .map(|(b, w)| b.mean * w)
            .sum::<f64>();
        // Var of weighted mean = Σ w² · SE²; with inverse-variance weights
        // this equals 1/Σ(1/SE²).
        let inv_var: f64 = estimates
            .iter()
            .map(|b| 1.0 / (b.standard_error * b.standard_error))
            .sum();
        if !mean.is_finite() || !inv_var.is_finite() || inv_var <= 0.0 {
            return None;
        }
        let n_total = estimates.iter().map(|b| b.n).sum();
        Some(PooledEstimate {
            mean,
            standard_error: (1.0 / inv_var).sqrt(),
            bins: estimates,
            n_total,
        })
    }

    /// Sparse-LDP truth inference over per-bin sufficient statistics
    /// (the `?mode=ldp-truth` estimate).
    ///
    /// Instead of trusting the declared noise σ alone, each bin's weight
    /// is re-derived from how far its observed mean sits from the current
    /// truth iterate — `w_b = n_b / (σ_b² + (mean_b − t)²)` — and the
    /// truth is re-estimated as the weighted mean, for a fixed number of
    /// rounds. Bins whose means are outliers (sparse, heavily-noised
    /// uploads) are automatically down-weighted, which is the core of the
    /// truth-inference iteration in "Truth Inference on Sparse
    /// Crowdsourcing Data with Local Differential Privacy". Deterministic:
    /// no RNG, fixed iteration count, `None` when every bin is empty.
    pub fn ldp_truth(&self, bins: &BTreeMap<PrivacyLevel, BinStats>) -> Option<PooledEstimate> {
        let estimates: Vec<BinEstimate> = bins
            .iter()
            .filter_map(|(level, stats)| self.bin_estimate_stats(*level, stats))
            .collect();
        if estimates.is_empty() {
            return None;
        }
        // Start from the plain inverse-variance pooled mean.
        let mut truth = self.pool_estimates(estimates.clone())?.mean;
        const ROUNDS: usize = 8;
        for _ in 0..ROUNDS {
            let mut num = 0.0_f64;
            let mut den = 0.0_f64;
            for b in &estimates {
                let sigma = b.level.sigma();
                let dev = b.mean - truth;
                let w = b.n as f64 / (sigma * sigma + dev * dev).max(f64::MIN_POSITIVE);
                num += w * b.mean;
                den += w;
            }
            if den <= 0.0 || !den.is_finite() {
                break;
            }
            let next = num / den;
            if !next.is_finite() {
                break;
            }
            truth = next;
        }
        // Report the truth-inference mean with the pooled error bar and
        // per-bin detail of the plain estimator (the SE model is the
        // same; only the weighting of means changed).
        let mut pooled = self.pool_estimates(estimates)?;
        pooled.mean = truth;
        Some(pooled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_dp::sampling;
    use rand::SeedableRng;
    use rand_chacha::ChaCha20Rng;

    /// Synthesizes a bin of noisy samples around `truth`.
    fn bin(
        rng: &mut ChaCha20Rng,
        truth: f64,
        pop_std: f64,
        level: PrivacyLevel,
        n: usize,
    ) -> Vec<f64> {
        (0..n)
            .map(|_| {
                let raw = sampling::gaussian(rng, truth, pop_std);
                sampling::gaussian(rng, raw, level.sigma())
            })
            .collect()
    }

    #[test]
    fn empty_bin_yields_none() {
        let e = Estimator::default();
        assert!(e.bin_estimate(PrivacyLevel::Low, &[]).is_none());
    }

    #[test]
    fn bin_mean_is_unbiased() {
        let mut rng = ChaCha20Rng::seed_from_u64(1);
        let e = Estimator::new(0.8);
        let samples = bin(&mut rng, 4.2, 0.8, PrivacyLevel::High, 50_000);
        let est = e.bin_estimate(PrivacyLevel::High, &samples).unwrap();
        assert!((est.mean - 4.2).abs() < 0.03, "mean {}", est.mean);
    }

    #[test]
    fn standard_error_grows_with_level_and_shrinks_with_n() {
        let e = Estimator::new(0.8);
        let low = e.bin_estimate(PrivacyLevel::Low, &vec![3.0; 30]).unwrap();
        let high = e.bin_estimate(PrivacyLevel::High, &vec![3.0; 30]).unwrap();
        assert!(high.standard_error > low.standard_error);
        let big = e.bin_estimate(PrivacyLevel::High, &vec![3.0; 300]).unwrap();
        assert!(big.standard_error < high.standard_error);
    }

    #[test]
    fn pooled_mean_near_truth_with_paper_bins() {
        // The paper's empirical uptake: 18 none / 32 low / 51 medium /
        // 30 high, n=131. The pooled estimate should recover the truth to
        // well under 0.2 on average — §3.2's anecdote saw |4.72−4.61| = 0.11.
        let e = Estimator::new(0.8);
        let truth = 4.61;
        let mut total_abs_err = 0.0;
        let trials = 200;
        let mut rng = ChaCha20Rng::seed_from_u64(2);
        for _ in 0..trials {
            let mut bins = BTreeMap::new();
            bins.insert(PrivacyLevel::None, bin(&mut rng, truth, 0.4, PrivacyLevel::None, 18));
            bins.insert(PrivacyLevel::Low, bin(&mut rng, truth, 0.4, PrivacyLevel::Low, 32));
            bins.insert(PrivacyLevel::Medium, bin(&mut rng, truth, 0.4, PrivacyLevel::Medium, 51));
            bins.insert(PrivacyLevel::High, bin(&mut rng, truth, 0.4, PrivacyLevel::High, 30));
            let pooled = e.pooled(&bins);
            total_abs_err += (pooled.mean - truth).abs();
            assert_eq!(pooled.n_total, 131);
        }
        let mae = total_abs_err / trials as f64;
        assert!(mae < 0.15, "mean abs error {mae}");
    }

    #[test]
    fn pooling_beats_best_single_bin() {
        // Pooled SE must be at most the smallest per-bin SE.
        let e = Estimator::new(0.8);
        let mut rng = ChaCha20Rng::seed_from_u64(3);
        let mut bins = BTreeMap::new();
        bins.insert(PrivacyLevel::None, bin(&mut rng, 3.0, 0.8, PrivacyLevel::None, 18));
        bins.insert(PrivacyLevel::High, bin(&mut rng, 3.0, 0.8, PrivacyLevel::High, 30));
        let pooled = e.pooled(&bins);
        let best = pooled
            .bins
            .iter()
            .map(|b| b.standard_error)
            .fold(f64::INFINITY, f64::min);
        assert!(pooled.standard_error <= best + 1e-12);
    }

    #[test]
    fn pooled_skips_empty_bins() {
        let e = Estimator::default();
        let mut bins = BTreeMap::new();
        bins.insert(PrivacyLevel::None, vec![4.0, 4.0]);
        bins.insert(PrivacyLevel::High, Vec::new());
        let pooled = e.pooled(&bins);
        assert_eq!(pooled.bins.len(), 1);
        assert_eq!(pooled.n_total, 2);
        assert!((pooled.mean - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot pool zero responses")]
    fn pooling_nothing_panics() {
        let e = Estimator::default();
        let bins = BTreeMap::new();
        let _ = e.pooled(&bins);
    }

    #[test]
    fn pooled_checked_guards_empty_and_all_empty_bins() {
        // The legacy panic is unreachable through the checked API: an
        // empty map and a map of only-empty bins both yield None, no
        // division by zero, no NaN.
        let e = Estimator::default();
        assert!(e.pooled_checked(&BTreeMap::new()).is_none());
        let mut bins = BTreeMap::new();
        bins.insert(PrivacyLevel::Low, Vec::new());
        bins.insert(PrivacyLevel::High, Vec::new());
        assert!(e.pooled_checked(&bins).is_none());
        let mut stats = BTreeMap::new();
        stats.insert(PrivacyLevel::Low, BinStats::EMPTY);
        assert!(e.pooled_stats(&stats).is_none());
        assert!(e.ldp_truth(&stats).is_none());
    }

    #[test]
    fn single_bin_pool_is_the_bin_estimate() {
        // A one-bin survey must pool to exactly its own bin estimate —
        // the weight normalizes to 1 and nothing divides by zero.
        let e = Estimator::default();
        let mut bins = BTreeMap::new();
        bins.insert(PrivacyLevel::Medium, vec![3.5, 4.0, 2.5]);
        let pooled = e.pooled_checked(&bins).expect("non-empty bin pools");
        let solo = e
            .bin_estimate(PrivacyLevel::Medium, &[3.5, 4.0, 2.5])
            .expect("non-empty bin estimates");
        assert_eq!(pooled.bins.len(), 1);
        assert_eq!(pooled.mean, solo.mean);
        assert!(pooled.standard_error.is_finite());
        assert!((pooled.standard_error - solo.standard_error).abs() < 1e-12);
    }

    #[test]
    fn stats_path_matches_sample_path_bitwise() {
        // The streaming path must be indistinguishable from the scan:
        // same samples, same arrival order → bit-equal estimates.
        let e = Estimator::new(0.7);
        let mut rng = ChaCha20Rng::seed_from_u64(9);
        let mut bins = BTreeMap::new();
        let mut stats = BTreeMap::new();
        for level in [PrivacyLevel::None, PrivacyLevel::Low, PrivacyLevel::High] {
            let samples = bin(&mut rng, 3.3, 0.7, level, 257);
            stats.insert(level, BinStats::from_samples(&samples));
            bins.insert(level, samples);
        }
        let scan = e.pooled(&bins);
        let streamed = e.pooled_stats(&stats).expect("non-empty");
        assert_eq!(scan, streamed);
    }

    #[test]
    fn bin_stats_merge_is_order_preserving_concatenation() {
        // Merging shard-local stats equals folding the concatenated
        // sample stream: the per-survey arrival order is shard-count
        // invariant, so this is what makes 1-shard ≡ 8-shard reads exact.
        let a = [4.1, 3.9, 4.4];
        let b = [2.0, 5.0];
        let mut merged = BinStats::from_samples(&a);
        merged.merge(&BinStats::from_samples(&b));
        let whole: Vec<f64> = a.iter().chain(b.iter()).copied().collect();
        assert_eq!(merged, BinStats::from_samples(&whole));
        assert_eq!(merged.n, 5);
        assert_eq!(merged.min, 2.0);
        assert_eq!(merged.max, 5.0);
    }

    #[test]
    fn bin_stats_guard_non_finite_accumulation() {
        let mut s = BinStats::EMPTY;
        assert!(s.mean().is_none());
        assert!(s.variance().is_none());
        s.push(f64::MAX);
        s.push(f64::MAX); // sum overflows to +∞
        assert!(s.mean().is_none(), "non-finite mean must be guarded");
        let e = Estimator::default();
        assert!(e.bin_estimate_stats(PrivacyLevel::Low, &s).is_none());
    }

    #[test]
    fn ldp_truth_is_deterministic_and_near_pooled_on_agreeing_bins() {
        let e = Estimator::new(0.8);
        let mut rng = ChaCha20Rng::seed_from_u64(11);
        let mut stats = BTreeMap::new();
        for level in [PrivacyLevel::None, PrivacyLevel::Low, PrivacyLevel::Medium] {
            let samples = bin(&mut rng, 4.2, 0.8, level, 400);
            stats.insert(level, BinStats::from_samples(&samples));
        }
        let a = e.ldp_truth(&stats).expect("non-empty");
        let b = e.ldp_truth(&stats).expect("non-empty");
        assert_eq!(a.mean, b.mean, "no hidden randomness");
        let pooled = e.pooled_stats(&stats).expect("non-empty");
        assert!(
            (a.mean - pooled.mean).abs() < 0.1,
            "agreeing bins: truth {} vs pooled {}",
            a.mean,
            pooled.mean
        );
        assert_eq!(a.n_total, pooled.n_total);
    }

    #[test]
    fn ldp_truth_downweights_outlier_bin() {
        // Three well-populated bins agree near 4.0; a sparse noisy bin
        // sits at 1.0. Truth inference must land closer to the consensus
        // than plain inverse-variance pooling does.
        let e = Estimator::new(0.8);
        let mut stats = BTreeMap::new();
        for level in [PrivacyLevel::None, PrivacyLevel::Low, PrivacyLevel::Medium] {
            stats.insert(level, BinStats::from_samples(&vec![4.0; 200]));
        }
        stats.insert(PrivacyLevel::High, BinStats::from_samples(&vec![1.0; 40]));
        let pooled = e.pooled_stats(&stats).expect("non-empty");
        let truth = e.ldp_truth(&stats).expect("non-empty");
        assert!(
            (truth.mean - 4.0).abs() < (pooled.mean - 4.0).abs(),
            "truth {} should beat pooled {}",
            truth.mean,
            pooled.mean
        );
    }

    #[test]
    #[should_panic(expected = "spread must be positive")]
    fn zero_pop_std_rejected() {
        let _ = Estimator::new(0.0);
    }
}
