//! # loki-core — at-source obfuscation, privacy levels and estimation
//!
//! The paper's primary contribution (§3): users pick a privacy level per
//! survey, the *client* adds Gaussian noise of the corresponding standard
//! deviation before upload, and a differential-privacy framework tracks
//! cumulative loss so it "can be tracked and balanced across the user
//! base, while ensuring sufficient accuracy of the aggregated response".
//!
//! * [`privacy_level`] — the four app levels (none/low/medium/high) and
//!   their σ and (ε, δ) mappings;
//! * [`obfuscate`] — the at-source obfuscator: Gaussian noise for ratings
//!   and numeric answers, k-ary randomized response for multiple choice,
//!   and a type-level refusal to touch free text;
//! * [`estimator`] — per-bin and pooled mean estimation with
//!   inverse-variance weighting and confidence intervals;
//! * [`ledger`] — cumulative per-user accounting plus the balancing
//!   allocator that spreads loss across the user base;
//! * [`trial`] — the 131-volunteer lecturer-rating trial generator;
//! * [`figure2`] — the per-bin deviation analysis Fig. 2 plots.

//! # Example
//!
//! At-source obfuscation of one rating at the app's *medium* level:
//!
//! ```
//! use loki_core::obfuscate::Obfuscator;
//! use loki_core::privacy_level::PrivacyLevel;
//! use loki_survey::question::{Answer, Question, QuestionKind};
//! use loki_survey::QuestionId;
//! use rand::SeedableRng;
//!
//! let question = Question {
//!     id: QuestionId(0),
//!     text: "Rate this lecturer".into(),
//!     kind: QuestionKind::likert5(),
//!     sensitive: false,
//! };
//! let mut rng = rand_chacha::ChaCha20Rng::seed_from_u64(1);
//! let ob = Obfuscator::new(PrivacyLevel::Medium)
//!     .obfuscate_answer(&mut rng, &question, &Answer::Rating(4.0))
//!     .unwrap();
//! assert!(ob.answer.is_obfuscated());          // what uploads
//! let loss = PrivacyLevel::Medium.privacy_loss(4.0);
//! assert!(loss.is_finite());                   // what the ledger charges
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod consistency;
pub mod deconvolve;
pub mod estimator;
pub mod figure2;
pub mod ledger;
pub mod obfuscate;
pub mod privacy_level;
pub mod trial;

pub use estimator::{BinEstimate, PooledEstimate};
pub use ledger::{AllocationStrategy, BudgetBalancer};
pub use obfuscate::{ObfuscationError, ObfuscationMethod, Obfuscator};
pub use privacy_level::PrivacyLevel;
pub use trial::{Trial, TrialConfig};
