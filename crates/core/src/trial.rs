//! The lecturer-rating trial (§3.2).
//!
//! The paper trialled Loki with 131 university volunteers rating
//! lecturers; uptake of the four privacy levels was 18 / 32 / 51 / 30
//! (none / low / medium / high). This module generates that trial
//! synthetically:
//!
//! * each lecturer has a ground-truth mean quality;
//! * each student carries a personal rating bias and rates each lecturer
//!   with a participation probability (not every student had every
//!   lecturer — Fig. 2's histogram varies per lecturer);
//! * raw ratings are integer 1–5; the noisy rating adds the student's
//!   privacy level's Gaussian σ, unclamped, exactly as the app uploads.

use crate::privacy_level::PrivacyLevel;
use loki_dp::sampling;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Configuration of a synthetic trial.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrialConfig {
    /// Students per privacy bin, in [`PrivacyLevel::ALL`] order. The
    /// paper's uptake: `[18, 32, 51, 30]`.
    pub bin_counts: [usize; 4],
    /// Ground-truth mean quality of each lecturer (1–5 scale).
    pub lecturer_means: Vec<f64>,
    /// Spread of per-student rating bias (scale points).
    pub rater_spread: f64,
    /// Probability a given student rates a given lecturer.
    pub participation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrialConfig {
    fn default() -> Self {
        // 13 lecturers, means spread over the upper half of the scale
        // (university lecturers skew high — §3.2's example sits at 4.61).
        let lecturer_means = vec![
            4.6, 3.8, 4.2, 3.1, 4.8, 3.5, 4.0, 2.8, 4.4, 3.9, 4.1, 3.3, 4.5,
        ];
        TrialConfig {
            bin_counts: [18, 32, 51, 30],
            lecturer_means,
            rater_spread: 0.7,
            participation: 0.75,
            seed: 0x10C4,
        }
    }
}

/// One student's recorded rating of one lecturer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatingPair {
    /// The raw (true) integer rating the student entered.
    pub raw: f64,
    /// The noisy value the app uploaded.
    pub noisy: f64,
}

/// A generated trial: students with levels, and their ratings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Trial {
    config: TrialConfig,
    /// Privacy level of each student.
    levels: Vec<PrivacyLevel>,
    /// `ratings[lecturer][student]`.
    ratings: Vec<Vec<Option<RatingPair>>>,
}

impl Trial {
    /// Generates a trial from a config.
    ///
    /// # Panics
    /// Panics if there are no lecturers, `rater_spread < 0`, or
    /// `participation` is outside `[0, 1]`.
    pub fn generate(config: TrialConfig) -> Trial {
        assert!(!config.lecturer_means.is_empty(), "need at least one lecturer");
        assert!(config.rater_spread >= 0.0, "rater spread must be non-negative");
        assert!(
            (0.0..=1.0).contains(&config.participation),
            "participation must be a probability"
        );
        let mut rng = ChaCha20Rng::seed_from_u64(config.seed);

        let mut levels = Vec::new();
        for (i, &count) in config.bin_counts.iter().enumerate() {
            levels.extend(std::iter::repeat_n(PrivacyLevel::ALL[i], count));
        }
        let n_students = levels.len();

        // Per-student bias, fixed across lecturers.
        let biases: Vec<f64> = (0..n_students)
            .map(|_| sampling::gaussian(&mut rng, 0.0, config.rater_spread))
            .collect();

        let ratings = config
            .lecturer_means
            .iter()
            .map(|&mean| {
                (0..n_students)
                    .map(|s| {
                        if !rng.gen_bool(config.participation) {
                            return None;
                        }
                        // Raw integer rating: mean + bias + idiosyncratic
                        // noise, rounded to the 1–5 scale.
                        let idio = sampling::gaussian(&mut rng, 0.0, 0.4);
                        let raw = (mean + biases[s] + idio).round().clamp(1.0, 5.0);
                        let sigma = levels[s].sigma();
                        let noisy = sampling::gaussian(&mut rng, raw, sigma);
                        Some(RatingPair { raw, noisy })
                    })
                    .collect()
            })
            .collect();

        Trial {
            config,
            levels,
            ratings,
        }
    }

    /// The trial's configuration.
    pub fn config(&self) -> &TrialConfig {
        &self.config
    }

    /// Number of students.
    pub fn student_count(&self) -> usize {
        self.levels.len()
    }

    /// Number of lecturers.
    pub fn lecturer_count(&self) -> usize {
        self.config.lecturer_means.len()
    }

    /// Each student's privacy level.
    pub fn levels(&self) -> &[PrivacyLevel] {
        &self.levels
    }

    /// Uploaded (noisy) ratings of one lecturer, grouped by privacy bin.
    ///
    /// # Panics
    /// Panics if `lecturer` is out of range.
    pub fn noisy_by_bin(&self, lecturer: usize) -> BTreeMap<PrivacyLevel, Vec<f64>> {
        let mut bins: BTreeMap<PrivacyLevel, Vec<f64>> = BTreeMap::new();
        for level in PrivacyLevel::ALL {
            bins.insert(level, Vec::new());
        }
        for (s, pair) in self.ratings[lecturer].iter().enumerate() {
            if let Some(p) = pair {
                bins.get_mut(&self.levels[s]).expect("all levels present").push(p.noisy);
            }
        }
        bins
    }

    /// Raw (true) ratings of one lecturer across all students who rated.
    pub fn raw_ratings(&self, lecturer: usize) -> Vec<f64> {
        self.ratings[lecturer]
            .iter()
            .flatten()
            .map(|p| p.raw)
            .collect()
    }

    /// All uploaded ratings of one lecturer.
    pub fn noisy_ratings(&self, lecturer: usize) -> Vec<f64> {
        self.ratings[lecturer]
            .iter()
            .flatten()
            .map(|p| p.noisy)
            .collect()
    }

    /// The ground-truth mean of a lecturer.
    pub fn true_mean(&self, lecturer: usize) -> f64 {
        self.config.lecturer_means[lecturer]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_has_131_students() {
        let t = Trial::generate(TrialConfig::default());
        assert_eq!(t.student_count(), 131);
        assert_eq!(t.lecturer_count(), 13);
        let counts: Vec<usize> = PrivacyLevel::ALL
            .iter()
            .map(|l| t.levels().iter().filter(|x| *x == l).count())
            .collect();
        assert_eq!(counts, vec![18, 32, 51, 30]);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Trial::generate(TrialConfig::default());
        let b = Trial::generate(TrialConfig::default());
        assert_eq!(a.noisy_ratings(0), b.noisy_ratings(0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Trial::generate(TrialConfig::default());
        let b = Trial::generate(TrialConfig {
            seed: 99,
            ..TrialConfig::default()
        });
        assert_ne!(a.noisy_ratings(0), b.noisy_ratings(0));
    }

    #[test]
    fn raw_ratings_are_on_scale_integers() {
        let t = Trial::generate(TrialConfig::default());
        for l in 0..t.lecturer_count() {
            for r in t.raw_ratings(l) {
                assert!((1.0..=5.0).contains(&r));
                assert_eq!(r, r.round());
            }
        }
    }

    #[test]
    fn none_bin_uploads_are_exact() {
        let t = Trial::generate(TrialConfig::default());
        let bins = t.noisy_by_bin(0);
        for v in &bins[&PrivacyLevel::None] {
            assert_eq!(*v, v.round(), "none-bin value {v} is not an integer");
        }
    }

    #[test]
    fn high_bin_uploads_are_noisy() {
        let t = Trial::generate(TrialConfig::default());
        let bins = t.noisy_by_bin(0);
        let noisy = &bins[&PrivacyLevel::High];
        assert!(!noisy.is_empty());
        // With σ=2, the chance all values are integers is nil.
        assert!(noisy.iter().any(|v| *v != v.round()));
    }

    #[test]
    fn participation_thins_ratings() {
        let full = Trial::generate(TrialConfig {
            participation: 1.0,
            ..TrialConfig::default()
        });
        assert_eq!(full.raw_ratings(0).len(), 131);
        let half = Trial::generate(TrialConfig {
            participation: 0.5,
            ..TrialConfig::default()
        });
        let n = half.raw_ratings(0).len();
        assert!((40..=90).contains(&n), "half participation gave {n}");
    }

    #[test]
    fn raw_means_track_lecturer_quality() {
        let t = Trial::generate(TrialConfig {
            participation: 1.0,
            ..TrialConfig::default()
        });
        // Best and worst lecturers by truth should order the raw means.
        let raw_mean = |l: usize| {
            let r = t.raw_ratings(l);
            r.iter().sum::<f64>() / r.len() as f64
        };
        let best = 4; // mean 4.8
        let worst = 7; // mean 2.8
        assert!(raw_mean(best) > raw_mean(worst) + 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one lecturer")]
    fn empty_lecturers_rejected() {
        let _ = Trial::generate(TrialConfig {
            lecturer_means: vec![],
            ..TrialConfig::default()
        });
    }
}
