//! # Loki — a privacy-preserving crowdsourced survey platform
//!
//! Rust reproduction of *Kandappu, Sivaraman, Friedman, Boreli:
//! "Exposing and Mitigating Privacy Loss in Crowdsourced Survey
//! Platforms"* (CoNEXT Student Workshop 2013).
//!
//! This facade crate re-exports the whole workspace under one roof:
//!
//! * [`dp`] — differential-privacy substrate (mechanisms, composition,
//!   RDP accounting, per-user ledgers);
//! * [`survey`] — survey/question/response data model and the
//!   demographics that drive the paper's de-anonymization attack;
//! * [`platform`] — AMT-style marketplace simulator (workers, behaviour
//!   models, discrete-event campaign engine, worker-ID policies);
//! * [`attack`] — the §2 attack: synthetic population, cross-survey
//!   linkage, registry re-identification, sensitive inference;
//! * [`core`] — the paper's contribution: privacy levels, at-source
//!   obfuscation, estimators, budget balancing, the Fig. 2 analysis;
//! * [`net`] — blocking HTTP/1.1 framework over `std::net`;
//! * [`obs`] — zero-dependency metrics/tracing substrate (counters,
//!   gauges, histograms, Prometheus exposition, sanitized access log);
//! * [`server`] — the Loki REST backend (versioned `/v1` API);
//! * [`client`] — the app-side library (local obfuscation + upload).
//!
//! ## Quickstart
//!
//! ```no_run
//! use loki::client::LokiClient;
//! use loki::core::privacy_level::PrivacyLevel;
//! use loki::server::AppState;
//! use std::sync::Arc;
//!
//! // Server.
//! let state = Arc::new(AppState::new());
//! let handle = loki::server::serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
//!
//! // App session: answers are obfuscated locally before upload.
//! let client = LokiClient::connect(&handle.base_url(), "alice").unwrap();
//! let surveys = client.list_surveys().unwrap();
//! println!("{} surveys, privacy levels: {:?}", surveys.len(), PrivacyLevel::ALL);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use loki_attack as attack;
pub use loki_client as client;
pub use loki_core as core;
pub use loki_dp as dp;
pub use loki_net as net;
pub use loki_obs as obs;
pub use loki_platform as platform;
pub use loki_server as server;
pub use loki_survey as survey;
