//! Streaming-aggregation equivalence: the per-shard sufficient
//! statistics must be indistinguishable from a full submission rescan.
//!
//! Three properties pin the tentpole refactor:
//!
//! 1. **Bitwise estimate parity** — for every survey/question/shard
//!    count, `streaming_results` equals the scan-backed `results` down
//!    to the serialized bytes. `BinStats::push` is the same sequential
//!    fold a rescan performs, and the fold runs inside the submission
//!    critical section, so not even the last ulp may differ.
//! 2. **Scan-free totals** — `/v1/stats`' submission total comes from
//!    per-shard counters and must agree exactly with a per-survey walk.
//! 3. **Truth-inference parity** — the `?mode=ldp-truth` path computes
//!    from the same statistics a rescan would rebuild.
//!
//! All sequences are fixed-seed (explicit LCG), so failures reproduce.

use loki::core::estimator::{BinStats, Estimator};
use loki::core::privacy_level::PrivacyLevel;
use loki::server::AppState;
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::response::Response;
use loki::survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki::survey::QuestionId;

/// Deterministic generator — same constants as the sharding fuzz.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// A survey mixing estimator-relevant kinds: a likert rating, a bounded
/// numeric, and a multiple choice (which carries no numeric magnitude
/// and must stay invisible to the streaming statistics).
fn mixed_survey(id: u64) -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(id), format!("survey-{id}"));
    b.question("rate the lecture", QuestionKind::likert5(), false);
    b.question("hours of sleep", QuestionKind::Numeric { min: 0, max: 24 }, false);
    b.question(
        "commute mode",
        QuestionKind::MultipleChoice { options: vec!["walk".into(), "bus".into(), "car".into()] },
        false,
    );
    b.build().unwrap()
}

const LEVELS: [PrivacyLevel; 4] =
    [PrivacyLevel::None, PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High];

/// Publishes `surveys` surveys and submits a fixed-seed stream of
/// responses across them at mixed privacy levels (duplicates included,
/// rejected identically everywhere).
fn fill(state: &AppState, surveys: u64, ops: u64, seed: u64) {
    for id in 1..=surveys {
        state.add_survey(mixed_survey(id)).unwrap();
    }
    let mut rng = Lcg(seed);
    for _ in 0..ops {
        let id = 1 + rng.next() % surveys;
        let user = format!("w{}", rng.next() % 48);
        let level = LEVELS[(rng.next() % 4) as usize];
        // Obfuscated values with plenty of mantissa bits in play, so any
        // fold-order difference would actually show up.
        let rating = 1.0 + (rng.next() % 40_000) as f64 / 10_000.0;
        let sleep = (rng.next() % 24_000) as f64 / 1_000.0;
        let mut r = Response::new(user.clone(), SurveyId(id));
        r.answer(QuestionId(0), Answer::Obfuscated(rating));
        r.answer(QuestionId(1), Answer::Obfuscated(sleep));
        r.answer(QuestionId(2), Answer::Choice((rng.next() % 3) as usize));
        let _ = state.submit(&user, level, r, &[]);
    }
}

#[test]
fn streaming_estimates_equal_full_rescan_on_every_shard_count() {
    let estimator = Estimator::default();
    for shards in [1usize, 3, 8] {
        let state = AppState::with_shards(shards);
        fill(&state, 6, 300, 0x00d1_5eed);
        for id in 1..=6u64 {
            for q in [0u32, 1] {
                let scan = state.results(SurveyId(id), QuestionId(q), &estimator);
                let stream = state.streaming_results(SurveyId(id), QuestionId(q), &estimator);
                // Bitwise: serialize both and compare the bytes, not an
                // epsilon — f64 equality through JSON round-trips every
                // mantissa bit.
                assert_eq!(
                    serde_json::to_vec(&scan).unwrap(),
                    serde_json::to_vec(&stream).unwrap(),
                    "estimate diverged: {shards} shards, survey {id}, q{q}"
                );
            }
            // Choice questions carry no magnitude: the streaming state
            // must not have invented statistics for them.
            assert_eq!(state.streaming_bins(SurveyId(id), QuestionId(2)), None);
        }
    }
}

#[test]
fn streaming_bins_equal_rescanned_sufficient_statistics() {
    let state = AppState::with_shards(8);
    fill(&state, 3, 200, 0xb175_f00d);
    for id in 1..=3u64 {
        for q in [0u32, 1] {
            let scanned = state.bin_samples(SurveyId(id), QuestionId(q));
            let streamed = state.streaming_bins(SurveyId(id), QuestionId(q)).unwrap();
            assert_eq!(streamed.len(), scanned.len(), "bin set diverged");
            for (level, samples) in &scanned {
                let rebuilt = BinStats::from_samples(samples);
                let live = streamed[level];
                // Field-for-field bit equality, including the squared
                // sums where fold order matters most.
                assert_eq!(
                    serde_json::to_string(&rebuilt).unwrap(),
                    serde_json::to_string(&live).unwrap(),
                    "sufficient statistics diverged: survey {id}, q{q}, {level:?}"
                );
            }
        }
    }
}

#[test]
fn ldp_truth_mode_computes_from_the_same_statistics() {
    let estimator = Estimator::default();
    let state = AppState::with_shards(3);
    fill(&state, 2, 150, 0x7007_1dea);
    for id in 1..=2u64 {
        let bins = state.streaming_bins(SurveyId(id), QuestionId(0)).unwrap();
        let direct = estimator.ldp_truth(&bins);
        let served = state.streaming_truth(SurveyId(id), QuestionId(0), &estimator);
        assert_eq!(
            serde_json::to_vec(&direct).unwrap(),
            serde_json::to_vec(&served).unwrap()
        );
    }
}

#[test]
fn stats_totals_match_per_survey_counts_exactly() {
    for shards in [1usize, 3, 8] {
        let state = AppState::with_shards(shards);
        fill(&state, 5, 250, 0xc047_0c0a);
        let walked: u64 = state
            .surveys()
            .iter()
            .map(|sv| state.submission_count(sv.id) as u64)
            .sum();
        assert_eq!(state.submission_total(), walked, "{shards} shards");
        for sv in state.surveys() {
            assert_eq!(
                state.survey_submission_total(sv.id),
                state.submission_count(sv.id) as u64,
                "survey {} at {shards} shards",
                sv.id.0
            );
        }
    }
}
