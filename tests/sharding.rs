//! Shard-routing invariants for the sharded store.
//!
//! Two properties keep sharding invisible to everything above the
//! [`AppState`] facade:
//!
//! 1. **Routing stability** — `hash(survey_id)` is a fixed function: the
//!    same id lands on the same shard in every process, across restarts
//!    and across WAL-lane replay. (The store must never use a seeded
//!    hasher like `std::collections`' `RandomState` for routing.)
//! 2. **Snapshot equivalence** — the merged per-shard state after any
//!    operation sequence equals the pre-shard single-map state for the
//!    same sequence: a 1-shard store *is* the old global-lock store, so
//!    a fixed-seed fuzz comparing `with_shards(8)` against
//!    `with_shards(1)` pins the refactor to the old semantics.

use loki::core::privacy_level::PrivacyLevel;
use loki::dp::accountant::ReleaseKind;
use loki::server::wal::{replay_lanes, GroupCommitConfig};
use loki::server::{persist, AppState};
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::response::Response;
use loki::survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki::survey::QuestionId;

fn survey(id: u64) -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(id), format!("survey-{id}"));
    b.question("rate", QuestionKind::likert5(), false);
    b.build().unwrap()
}

fn submit_one(state: &AppState, user: &str, id: u64, value: f64) {
    let mut r = Response::new(user, SurveyId(id));
    r.answer(QuestionId(0), Answer::Obfuscated(value));
    state
        .submit(
            user,
            PrivacyLevel::Medium,
            r,
            &[(
                format!("survey-{id}/q0"),
                ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        )
        .unwrap();
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "loki-sharding-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Snapshot a state to bytes via the persist layer — the canonical
/// "merged view" of a store, independent of its shard count.
fn snapshot_bytes(state: &AppState, dir: &std::path::Path, name: &str) -> Vec<u8> {
    let path = dir.join(name);
    persist::save(state, &path).unwrap();
    std::fs::read(&path).unwrap()
}

#[test]
fn routing_is_stable_across_separately_constructed_states() {
    // Two independent processes (modeled as two independent states) must
    // agree on every id's home shard, else a restart would strand data.
    let a = AppState::with_shards(8);
    let b = AppState::with_shards(8);
    for id in 0..512u64 {
        let shard = a.shard_of_survey(SurveyId(id));
        assert!(shard < a.num_shards());
        assert_eq!(
            shard,
            b.shard_of_survey(SurveyId(id)),
            "id {id} routed differently across restarts"
        );
    }
    for user in ["alice", "bob", "", "u-9999", "日本語"] {
        assert_eq!(
            a.shard_of_user(user),
            b.shard_of_user(user),
            "user {user:?} routed differently across restarts"
        );
    }
}

#[test]
fn routing_survives_lane_replay() {
    let dir = scratch_dir("replay");
    let state = AppState::new();
    state
        .attach_journal_lanes(&dir, GroupCommitConfig::default())
        .unwrap();

    // Enough surveys to populate several lanes, each with a submission.
    let ids: Vec<u64> = (1..=12).collect();
    for &id in &ids {
        state.add_survey(survey(id)).unwrap();
        submit_one(&state, &format!("user-{id}"), id, 3.5);
    }
    let homes: Vec<usize> = ids.iter().map(|&id| state.shard_of_survey(SurveyId(id))).collect();
    state.detach_journal();

    // Replay the per-shard lane files into a fresh store: every survey
    // and submission returns, on the same shard it lived on before.
    let replayed = replay_lanes(&dir).unwrap();
    assert_eq!(replayed.surveys().len(), ids.len());
    for (i, &id) in ids.iter().enumerate() {
        assert!(replayed.survey(SurveyId(id)).is_some(), "survey {id} lost in replay");
        assert_eq!(replayed.submission_count(SurveyId(id)), 1, "submissions for {id}");
        assert_eq!(
            replayed.shard_of_survey(SurveyId(id)),
            homes[i],
            "survey {id} changed shards across replay"
        );
    }
    // The merged views agree byte for byte.
    let before = snapshot_bytes(&state, &dir, "before.json");
    let after = snapshot_bytes(&replayed, &dir, "after.json");
    assert_eq!(before, after, "replayed state diverged from the original");
    std::fs::remove_dir_all(&dir).ok();
}

/// Tiny deterministic generator — explicit LCG, no process-seeded RNG,
/// so the fuzz sequence is identical on every run and platform.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

#[test]
fn fuzzed_op_sequence_matches_single_shard_snapshot() {
    let dir = scratch_dir("fuzz");
    let sharded = AppState::with_shards(8);
    let flat = AppState::with_shards(1);
    let states = [&sharded, &flat];

    // A fixed-seed interleaving of publishes and submissions, applied
    // identically to both stores. Users repeat across surveys (legal)
    // and within a survey (duplicate, rejected identically by both).
    let mut rng = Lcg(0x5eed_cafe);
    let mut published: Vec<u64> = Vec::new();
    let mut next_id = 1u64;
    for _op in 0..400 {
        let roll = rng.next() % 10;
        if roll < 2 || published.is_empty() {
            for state in states {
                state.add_survey(survey(next_id)).unwrap();
            }
            published.push(next_id);
            next_id += 1;
        } else {
            let id = published[(rng.next() as usize) % published.len()];
            let user = format!("w{}", rng.next() % 64);
            let value = 1.0 + (rng.next() % 5) as f64;
            let mut outcomes = Vec::new();
            for state in states {
                let mut r = Response::new(user.clone(), SurveyId(id));
                r.answer(QuestionId(0), Answer::Obfuscated(value));
                outcomes.push(
                    state
                        .submit(
                            &user,
                            PrivacyLevel::Medium,
                            r,
                            &[(
                                format!("survey-{id}/q0"),
                                ReleaseKind::Gaussian {
                                    sigma: 1.0,
                                    sensitivity: 4.0,
                                },
                            )],
                        )
                        .is_ok(),
                );
            }
            assert_eq!(
                outcomes[0], outcomes[1],
                "stores disagreed on accepting user {user} → survey {id}"
            );
        }
    }

    // Merged sharded view ≡ single-map view: listing, per-survey
    // counts, per-user ε, and the full snapshot bytes.
    let merged: Vec<u64> = sharded.surveys().iter().map(|s| s.id.0).collect();
    let single: Vec<u64> = flat.surveys().iter().map(|s| s.id.0).collect();
    assert_eq!(merged, single);
    for &id in &published {
        assert_eq!(
            sharded.submission_count(SurveyId(id)),
            flat.submission_count(SurveyId(id)),
            "submission count diverged for survey {id}"
        );
    }
    for u in 0..64u64 {
        let user = format!("w{u}");
        let la = sharded.user_loss(&user);
        let lb = flat.user_loss(&user);
        assert_eq!(la.is_finite(), lb.is_finite(), "finiteness diverged for {user}");
        if la.is_finite() {
            let a = la.epsilon.value();
            let b = lb.epsilon.value();
            assert!((a - b).abs() < 1e-12, "ε diverged for {user}: {a} vs {b}");
        }
    }
    let a = snapshot_bytes(&sharded, &dir, "sharded.json");
    let b = snapshot_bytes(&flat, &dir, "flat.json");
    assert_eq!(a, b, "merged per-shard snapshot != single-map snapshot");
    std::fs::remove_dir_all(&dir).ok();
}

fn demographics_survey(id: u64) -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(id), format!("about-you-{id}"));
    b.question("Day of the month you were born", QuestionKind::Numeric { min: 1, max: 31 }, true);
    b.question("Month you were born", QuestionKind::Numeric { min: 1, max: 12 }, true);
    b.question("Year you were born", QuestionKind::Numeric { min: 1900, max: 2020 }, true);
    b.question(
        "What is your gender?",
        QuestionKind::MultipleChoice { options: vec!["Female".into(), "Male".into()] },
        true,
    );
    b.question("What is your zip code?", QuestionKind::Numeric { min: 0, max: 99999 }, true);
    b.build().unwrap()
}

fn submit_demographics(state: &AppState, user: &str, id: u64, day: f64, zip: f64) {
    let mut r = Response::new(user, SurveyId(id));
    r.answer(QuestionId(0), Answer::Obfuscated(day));
    r.answer(QuestionId(1), Answer::Obfuscated(6.0));
    r.answer(QuestionId(2), Answer::Obfuscated(1990.0));
    r.answer(QuestionId(3), Answer::Choice(0));
    r.answer(QuestionId(4), Answer::Obfuscated(zip));
    state.submit(user, PrivacyLevel::None, r, &[]).unwrap();
}

#[test]
fn streaming_state_rebuilds_identically_across_lane_replay() {
    // The per-shard sufficient statistics and the privacy observatory
    // are derived state: a store rebuilt from WAL-lane replay must
    // re-derive both bit-for-bit, with no rescan fallback.
    let dir = scratch_dir("agg-replay");
    let state = AppState::new();
    state
        .attach_journal_lanes(&dir, GroupCommitConfig::default())
        .unwrap();

    for id in 1..=4u64 {
        state.add_survey(survey(id)).unwrap();
    }
    state.add_survey(demographics_survey(9)).unwrap();
    let mut rng = Lcg(0xa66_5eed);
    for n in 0..40 {
        let id = 1 + rng.next() % 4;
        let user = format!("w{}", rng.next() % 16);
        let value = 1.0 + (rng.next() % 500) as f64 / 100.0;
        let mut r = Response::new(user.clone(), SurveyId(id));
        r.answer(QuestionId(0), Answer::Obfuscated(value));
        // Duplicates are expected and must be ignored by both builds.
        let _ = state.submit(&user, PrivacyLevel::Medium, r, &[]);
        if n % 4 == 0 {
            // Cohort structure: users n and n+4 share a QI when day/zip
            // collide (rng-free so both builds see the same sequence).
            submit_demographics(&state, &format!("d{n}"), 9, 1.0 + (n % 8) as f64, 11111.0);
        }
    }
    state.detach_journal();

    let replayed = replay_lanes(&dir).unwrap();
    assert_eq!(replayed.submission_total(), state.submission_total());
    for id in 1..=4u64 {
        assert_eq!(
            replayed.survey_submission_total(SurveyId(id)),
            state.survey_submission_total(SurveyId(id)),
            "streaming per-survey count diverged for {id}"
        );
        assert_eq!(
            replayed.streaming_bins(SurveyId(id), QuestionId(0)),
            state.streaming_bins(SurveyId(id), QuestionId(0)),
            "sufficient statistics diverged for survey {id} (bitwise)"
        );
    }
    assert_eq!(replayed.survey_agg_rollups(), state.survey_agg_rollups());
    let before = state.privacy_summary();
    let after = replayed.privacy_summary();
    assert_eq!(after, before, "observatory state diverged across replay");
    assert!(before.subjects > 0, "fixture must exercise the observatory");
    assert!(before.k.complete > 0, "fixture must complete quasi-identifiers");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pagination_agrees_with_the_full_listing_on_every_shard_count() {
    for shards in [1usize, 3, 8] {
        let state = AppState::with_shards(shards);
        for id in (1..=23u64).rev() {
            state.add_survey(survey(id)).unwrap();
        }
        let full: Vec<u64> = state.surveys().iter().map(|s| s.id.0).collect();
        let mut paged = Vec::new();
        let mut after = None;
        loop {
            let (page, more) = state.surveys_page(after, 7);
            paged.extend(page.iter().map(|s| s.id.0));
            if !more {
                break;
            }
            after = page.last().map(|s| s.id);
        }
        assert_eq!(paged, full, "paged walk diverged at {shards} shards");
    }
}
