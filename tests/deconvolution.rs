//! End-to-end deconvolution: recover a lecturer's full rating histogram
//! from the noisy uploads of a generated trial, combining bins of
//! different σ.

use loki::core::deconvolve::{Deconvolver, NoisySample};
use loki::core::privacy_level::PrivacyLevel;
use loki::core::trial::{Trial, TrialConfig};

/// Collects (value, σ) pairs for one lecturer across all privacy bins.
fn samples_for(trial: &Trial, lecturer: usize) -> Vec<NoisySample> {
    trial
        .noisy_by_bin(lecturer)
        .into_iter()
        .flat_map(|(level, values)| {
            values
                .into_iter()
                .map(move |value| NoisySample {
                    value,
                    sigma: level.sigma(),
                })
        })
        .collect()
}

/// The true histogram of raw (pre-noise) ratings.
fn true_histogram(trial: &Trial, lecturer: usize) -> [f64; 5] {
    let raw = trial.raw_ratings(lecturer);
    let mut h = [0.0f64; 5];
    for r in &raw {
        h[(*r as usize) - 1] += 1.0 / raw.len() as f64;
    }
    h
}

#[test]
fn trial_histograms_recovered_within_tolerance() {
    // A bigger-than-paper trial so the estimator has enough samples to
    // judge the *method* rather than sampling noise: same bin mix, ×20.
    let trial = Trial::generate(TrialConfig {
        bin_counts: [360, 640, 1020, 600],
        participation: 1.0,
        seed: 77,
        ..TrialConfig::default()
    });
    let deconvolver = Deconvolver::new(1, 5);
    for lecturer in [0usize, 4, 7] {
        let out = deconvolver.run(&samples_for(&trial, lecturer));
        let truth = true_histogram(&trial, lecturer);
        for (k, (&est, &tru)) in out.probabilities.iter().zip(&truth).enumerate() {
            assert!(
                (est - tru).abs() < 0.06,
                "lecturer {lecturer}, p[{k}]: est {est} vs true {tru}"
            );
        }
        // The implied mean agrees with the raw mean.
        let raw = trial.raw_ratings(lecturer);
        let raw_mean: f64 = raw.iter().sum::<f64>() / raw.len() as f64;
        assert!(
            (out.mean - raw_mean).abs() < 0.08,
            "lecturer {lecturer}: mean {} vs raw {raw_mean}",
            out.mean
        );
    }
}

#[test]
fn paper_scale_trial_still_gives_usable_means() {
    // At the paper's n=131 the histogram is noisy but the mean holds up.
    let trial = Trial::generate(TrialConfig {
        participation: 1.0,
        seed: 78,
        ..TrialConfig::default()
    });
    let deconvolver = Deconvolver::new(1, 5);
    let mut total_err = 0.0;
    for lecturer in 0..trial.lecturer_count() {
        let out = deconvolver.run(&samples_for(&trial, lecturer));
        let raw = trial.raw_ratings(lecturer);
        let raw_mean: f64 = raw.iter().sum::<f64>() / raw.len() as f64;
        total_err += (out.mean - raw_mean).abs();
    }
    let mae = total_err / trial.lecturer_count() as f64;
    assert!(mae < 0.2, "mean abs error {mae} too large at n=131");
}

#[test]
fn none_bin_alone_is_exact() {
    let trial = Trial::generate(TrialConfig {
        bin_counts: [131, 0, 0, 0], // everyone at privacy 'none'
        participation: 1.0,
        seed: 79,
        ..TrialConfig::default()
    });
    let deconvolver = Deconvolver::new(1, 5);
    let out = deconvolver.run(&samples_for(&trial, 0));
    let truth = true_histogram(&trial, 0);
    for (k, (&est, &tru)) in out.probabilities.iter().zip(&truth).enumerate() {
        assert!(
            (est - tru).abs() < 1e-6,
            "exact bin must reproduce the histogram: p[{k}] {est} vs {tru}"
        );
    }
    let _ = PrivacyLevel::None; // silence unused import lint paths
}
