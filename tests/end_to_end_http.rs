//! End-to-end platform test: server + many app clients over real HTTP.
//!
//! Exercises the whole §3 pipeline: publish a survey, 40 users submit at
//! the paper's privacy-level mix through the app library (obfuscating
//! at-source), then read aggregated results and ledgers back over HTTP —
//! and verify the at-source property on the server's stored data.

use loki::client::LokiClient;
use loki::core::privacy_level::PrivacyLevel;
use loki::server::{serve, AppState};
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::survey::{SurveyBuilder, SurveyId};
use loki::survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn lecturer_survey() -> loki::survey::survey::Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "Rate your lecturers");
    b.question("Rate lecturer A", QuestionKind::likert5(), false);
    b.question("Rate lecturer B", QuestionKind::likert5(), false);
    b.build().unwrap()
}

#[test]
fn full_survey_lifecycle_over_http() {
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let base = handle.base_url();

    // 40 users across the four levels: 10 each, all true answer 4 for A,
    // 2 for B.
    let mut rng = ChaCha20Rng::seed_from_u64(42);
    for i in 0..40 {
        let level = PrivacyLevel::ALL[i % 4];
        let mut client = LokiClient::connect(&base, format!("user-{i:02}")).unwrap();
        let listed = client.list_surveys().unwrap();
        assert_eq!(listed.len(), 1);
        let survey = client.fetch_survey(SurveyId(listed[0].id)).unwrap();

        let mut answers = BTreeMap::new();
        answers.insert(QuestionId(0), Answer::Rating(4.0));
        answers.insert(QuestionId(1), Answer::Rating(2.0));
        let outcome = client.submit(&mut rng, &survey, &answers, level).unwrap();
        assert_eq!(outcome.stored, i + 1);

        // Cumulative ε: finite for noisy levels, unbounded (None) for none.
        match level {
            PrivacyLevel::None => assert_eq!(outcome.cumulative_epsilon, None),
            _ => assert!(outcome.cumulative_epsilon.unwrap() > 0.0),
        }
    }

    // At-source property: every stored numeric answer is Obfuscated, and
    // for noisy levels differs from the raw truth.
    let submissions = state.submissions(SurveyId(1));
    assert_eq!(submissions.len(), 40);
    for sub in &submissions {
        for q in [QuestionId(0), QuestionId(1)] {
            let answer = sub.response.get(q).unwrap();
            assert!(
                answer.is_obfuscated(),
                "stored answer for {} is not obfuscated",
                sub.user
            );
            if sub.level != PrivacyLevel::None {
                let truth = if q == QuestionId(0) { 4.0 } else { 2.0 };
                assert_ne!(
                    answer.as_f64(),
                    Some(truth),
                    "noisy answer equals raw truth for {}",
                    sub.user
                );
            }
        }
    }

    // Aggregates over HTTP: pooled means near the truths.
    let reader = LokiClient::connect(&base, "reader").unwrap();
    let _ = reader; // results are fetched via raw client below
    let http = loki::net::client::HttpClient::new(&base).unwrap();
    for (q, truth) in [(0u32, 4.0f64), (1u32, 2.0f64)] {
        let resp = http.get(&format!("/surveys/1/results/{q}")).unwrap();
        assert!(resp.status.is_success());
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let pooled = v["pooled_mean"].as_f64().unwrap();
        assert!(
            (pooled - truth).abs() < 0.6,
            "q{q}: pooled {pooled} far from {truth}"
        );
        assert_eq!(v["n_total"].as_u64().unwrap(), 40);
        assert_eq!(v["bins"].as_array().unwrap().len(), 4);
    }

    handle.shutdown();
}

#[test]
fn client_and_server_ledgers_agree() {
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();

    let mut rng = ChaCha20Rng::seed_from_u64(7);
    let mut client = LokiClient::connect(&handle.base_url(), "alice").unwrap();
    let survey = client.fetch_survey(SurveyId(1)).unwrap();
    let mut answers = BTreeMap::new();
    answers.insert(QuestionId(0), Answer::Rating(5.0));
    answers.insert(QuestionId(1), Answer::Rating(3.0));
    client
        .submit(&mut rng, &survey, &answers, PrivacyLevel::Medium)
        .unwrap();

    let local = client.local_loss().epsilon.value();
    let remote = client.server_loss().unwrap().unwrap();
    assert!(
        (local - remote).abs() < 1e-9,
        "local ε {local} != server ε {remote}"
    );
    handle.shutdown();
}

#[test]
fn raw_submission_cannot_reach_storage() {
    // Bypass the app library and POST a raw answer directly: the server
    // must refuse it — the at-source property holds even against a
    // misbehaving client.
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let http = loki::net::client::HttpClient::new(&handle.base_url()).unwrap();

    let body = serde_json::json!({
        "user": "mallory",
        "privacy_level": "none",
        "response": {
            "worker": "mallory",
            "survey": 1,
            "answers": {
                "0": {"Rating": 4.0},
                "1": {"Rating": 2.0},
            }
        },
        "releases": [],
    });
    let resp = http
        .post(
            "/surveys/1/responses",
            "application/json",
            serde_json::to_vec(&body).unwrap(),
        )
        .unwrap();
    assert_eq!(resp.status.0, 422, "{}", String::from_utf8_lossy(&resp.body));
    assert_eq!(state.submission_count(SurveyId(1)), 0);
    handle.shutdown();
}

#[test]
fn persistence_round_trips_through_disk() {
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();

    let mut rng = ChaCha20Rng::seed_from_u64(9);
    for i in 0..5 {
        let mut client = LokiClient::connect(&handle.base_url(), format!("u{i}")).unwrap();
        let survey = client.fetch_survey(SurveyId(1)).unwrap();
        let mut answers = BTreeMap::new();
        answers.insert(QuestionId(0), Answer::Rating(4.0));
        answers.insert(QuestionId(1), Answer::Rating(3.0));
        client
            .submit(&mut rng, &survey, &answers, PrivacyLevel::Low)
            .unwrap();
    }
    handle.shutdown();

    let dir = std::env::temp_dir().join(format!("loki-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("state.json");
    loki::server::persist::save(&state, &path).unwrap();
    let restored = loki::server::persist::load(&path).unwrap();
    assert_eq!(restored.submission_count(SurveyId(1)), 5);
    assert!(restored.user_loss("u0").epsilon.value() > 0.0);
    std::fs::remove_dir_all(&dir).unwrap();
}
