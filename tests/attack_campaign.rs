//! Integration test of the full §2 attack pipeline, scaled down for test
//! speed but preserving every stage: population → marketplace campaign →
//! redundancy filtering → linkage → re-identification → health inference.

use loki::attack::inference::HealthInferenceRule;
use loki::attack::population::{Population, PopulationConfig};
use loki::attack::registry::Registry;
use loki::attack::reident::Reidentifier;
use loki::attack::Linker;
use loki::platform::behavior::BehaviorModel;
use loki::platform::idpolicy::IdPolicy;
use loki::platform::marketplace::{Marketplace, MarketplaceConfig};
use loki::platform::spec::paper_surveys;
use loki::survey::redundancy::ConsistencyFilter;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn population() -> Population {
    Population::synthesize(
        PopulationConfig {
            size: 120_000,
            zip_count: 12,
            ..PopulationConfig::default()
        },
        &mut ChaCha20Rng::seed_from_u64(100),
    )
}

/// Runs the paper's campaign (4 harvest surveys) under a given ID policy
/// and returns (unique ids, de-anonymized count, health exposures).
fn run_campaign(id_policy: IdPolicy) -> (usize, usize, usize) {
    let pop = population();
    let registry = Registry::from_population(&pop, 1.0);
    let mut rng = ChaCha20Rng::seed_from_u64(101);

    // 200 workers: 90% honest, 10% random responders.
    let workers = pop.sample_workers(200, &mut rng, |_, i| {
        if i % 10 == 0 {
            BehaviorModel::Random
        } else {
            BehaviorModel::Honest { opinion_noise: 0.3 }
        }
    });

    let mut market = Marketplace::new(
        MarketplaceConfig {
            id_policy,
            acceptance_prob: 0.9,
            ..MarketplaceConfig::default()
        },
        workers,
        102,
    );

    let specs = paper_surveys();
    let mut linker = Linker::new();
    let filter = ConsistencyFilter::new(1.0);
    for spec in &specs[..4] {
        let outcome = market.post_task(spec, 200);
        let (kept, _) = filter.filter(&spec.survey, &outcome.responses);
        linker.ingest(spec, &kept);
    }

    let reidentifier = Reidentifier::new(&registry);
    let (reids, stats) = reidentifier.run(&linker);
    let exposures = HealthInferenceRule::default().infer_all(&reids);
    (stats.total_ids, stats.unique_matches, exposures.len())
}

#[test]
fn stable_ids_enable_deanonymization() {
    let (total, unique, exposed) = run_campaign(IdPolicy::Stable);
    assert!(total >= 150, "campaign reached {total} ids");
    // The paper: 72/400 = 18% de-anonymized. Our registry covers the
    // whole population, so the yield is higher; require a solid fraction
    // without pinning the exact number.
    let rate = unique as f64 / total as f64;
    assert!(
        rate > 0.2,
        "de-anonymization rate {rate} too low ({unique}/{total})"
    );
    // Health exposures are a subset of the de-anonymized (paper: 18 ≤ 72).
    assert!(exposed <= unique);
    assert!(exposed > 0, "no health exposures at all");
}

#[test]
fn per_survey_pseudonyms_defeat_the_attack() {
    let (_, unique, exposed) = run_campaign(IdPolicy::PerSurvey);
    assert_eq!(unique, 0, "pseudonyms leaked {unique} identities");
    assert_eq!(exposed, 0);
}

#[test]
fn campaign_cost_stays_under_paper_budget() {
    let pop = population();
    let mut rng = ChaCha20Rng::seed_from_u64(103);
    let workers = pop.sample_workers(450, &mut rng, |_, _| BehaviorModel::Honest {
        opinion_noise: 0.3,
    });
    let mut market = Marketplace::new(MarketplaceConfig::default(), workers, 104);
    let specs = paper_surveys();
    // Paper-scale quotas.
    for (spec, quota) in specs.iter().zip([400, 350, 300, 250, 100]) {
        let _ = market.post_task(spec, quota);
    }
    let dollars = market.costs().total_dollars();
    assert!(
        dollars < 30.0 * 5.0,
        "campaign cost ${dollars} not in the tens of dollars"
    );
    assert!(dollars > 1.0, "cost suspiciously low: ${dollars}");
}

#[test]
fn random_responders_mostly_filtered() {
    let pop = population();
    let mut rng = ChaCha20Rng::seed_from_u64(105);
    // Half random, half honest — extreme mix to make the filter visible.
    let workers = pop.sample_workers(100, &mut rng, |_, i| {
        if i % 2 == 0 {
            BehaviorModel::Random
        } else {
            BehaviorModel::Honest { opinion_noise: 0.3 }
        }
    });
    let mut market = Marketplace::new(
        MarketplaceConfig {
            acceptance_prob: 1.0,
            ..MarketplaceConfig::default()
        },
        workers,
        106,
    );
    let specs = paper_surveys();
    let outcome = market.post_task(&specs[0], 100);
    let filter = ConsistencyFilter::new(1.0);
    let (kept, rejected) = filter.filter(&specs[0].survey, &outcome.responses);
    // A 1–5 pair agrees within 1 by chance ~52% of the time, so a single
    // pair can't catch everyone — but the filter must reject a large
    // share while keeping honest responders.
    assert!(
        rejected.len() >= 15,
        "only {} of ~50 random responders rejected",
        rejected.len()
    );
    assert!(kept.len() >= 50, "too many honest responders rejected");
}
