//! Concurrency tests: the platform under parallel clients.

use loki::client::LokiClient;
use loki::core::privacy_level::PrivacyLevel;
use loki::server::{serve, AppState};
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::survey::{SurveyBuilder, SurveyId};
use loki::survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn survey() -> loki::survey::survey::Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "parallel");
    b.question("rate", QuestionKind::likert5(), false);
    b.build().unwrap()
}

#[test]
fn parallel_submissions_all_stored_exactly_once() {
    let state = Arc::new(AppState::new());
    state.add_survey(survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let base = handle.base_url();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let base = base.clone();
            std::thread::spawn(move || {
                let mut rng = ChaCha20Rng::seed_from_u64(t);
                for i in 0..10 {
                    let user = format!("t{t}-u{i}");
                    let mut client = LokiClient::connect(&base, &user).unwrap();
                    let survey = client.fetch_survey(SurveyId(1)).unwrap();
                    let mut answers = BTreeMap::new();
                    answers.insert(QuestionId(0), Answer::Rating(4.0));
                    client
                        .submit(&mut rng, &survey, &answers, PrivacyLevel::Low)
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    assert_eq!(state.submission_count(SurveyId(1)), 80);
    assert_eq!(state.accountant.user_count(), 80);
    // Every user has exactly one recorded release.
    for t in 0..8 {
        for i in 0..10 {
            assert_eq!(state.accountant.releases_of(&format!("t{t}-u{i}")), 1);
        }
    }
    handle.shutdown();
}

#[test]
fn duplicate_race_stores_one_copy() {
    // Many threads race the same user: exactly one submission must win.
    let state = Arc::new(AppState::new());
    state.add_survey(survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let base = handle.base_url();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let base = base.clone();
            std::thread::spawn(move || {
                let mut rng = ChaCha20Rng::seed_from_u64(100 + t);
                let mut client = LokiClient::connect(&base, "same-user").unwrap();
                let survey = client.fetch_survey(SurveyId(1)).unwrap();
                let mut answers = BTreeMap::new();
                answers.insert(QuestionId(0), Answer::Rating(3.0));
                client
                    .submit(&mut rng, &survey, &answers, PrivacyLevel::Low)
                    .is_ok()
            })
        })
        .collect();
    let successes = threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .filter(|&ok| ok)
        .count();
    // (The successes count can't exceed 1 because duplicates 409.)
    assert_eq!(successes, 1, "exactly one racer must win");
    assert_eq!(state.submission_count(SurveyId(1)), 1);
    handle.shutdown();
}

#[test]
fn group_commit_journal_matches_live_state_under_parallel_load() {
    // Same storm as above, but with a real journal attached: the group
    // committer must leave a WAL whose replay equals the live state.
    let path = std::env::temp_dir().join(format!("loki-conc-wal-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let state = Arc::new(AppState::new());
    state.attach_journal(loki::server::wal::Wal::open(&path).unwrap());
    state.add_survey(survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let base = handle.base_url();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            let base = base.clone();
            std::thread::spawn(move || {
                let mut rng = ChaCha20Rng::seed_from_u64(200 + t);
                for i in 0..8 {
                    let user = format!("t{t}-u{i}");
                    let mut client = LokiClient::connect(&base, &user).unwrap();
                    let survey = client.fetch_survey(SurveyId(1)).unwrap();
                    let mut answers = BTreeMap::new();
                    answers.insert(QuestionId(0), Answer::Rating(4.0));
                    client
                        .submit(&mut rng, &survey, &answers, PrivacyLevel::Low)
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    handle.shutdown();
    state.detach_journal();

    let replayed = loki::server::wal::replay(&path).unwrap();
    assert_eq!(replayed.submission_count(SurveyId(1)), 64);
    assert_eq!(
        replayed.submission_count(SurveyId(1)),
        state.submission_count(SurveyId(1))
    );
    for t in 0..8 {
        for i in 0..8 {
            let user = format!("t{t}-u{i}");
            assert!(replayed.has_submitted(SurveyId(1), &user), "{user}");
            assert_eq!(
                replayed.accountant.releases_of(&user),
                state.accountant.releases_of(&user),
                "{user}"
            );
        }
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn parallel_reads_during_writes() {
    let state = Arc::new(AppState::new());
    state.add_survey(survey()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let base = handle.base_url();

    let writer_base = base.clone();
    let writer = std::thread::spawn(move || {
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        for i in 0..30 {
            let user = format!("w{i}");
            let mut client = LokiClient::connect(&writer_base, &user).unwrap();
            let survey = client.fetch_survey(SurveyId(1)).unwrap();
            let mut answers = BTreeMap::new();
            answers.insert(QuestionId(0), Answer::Rating(4.0));
            client
                .submit(&mut rng, &survey, &answers, PrivacyLevel::Medium)
                .unwrap();
        }
    });

    let http = loki::net::client::HttpClient::new(&base).unwrap();
    let mut last_total = 0;
    for _ in 0..50 {
        let resp = http.get("/surveys/1/results/0").unwrap();
        if resp.status.is_success() {
            let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
            let n = v["n_total"].as_u64().unwrap();
            assert!(n >= last_total, "monotone growth violated: {n} < {last_total}");
            last_total = n;
        }
    }
    writer.join().unwrap();
    let resp = http.get("/surveys/1/results/0").unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["n_total"].as_u64().unwrap(), 30);
    handle.shutdown();
}
