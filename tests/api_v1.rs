//! Integration tests for the versioned `/v1` REST API: the unified error
//! envelope, the Prometheus `/v1/metrics` exposition, byte-identical
//! legacy aliases, request tracing across the group-commit boundary
//! (`x-loki-trace-id` → `/v1/traces/{id}`), the ε-audit stream,
//! `/v1/healthz`, and the history layer's SLO alert lifecycle
//! (`/v1/alerts`, `/v1/alerts/history`, `/v1/timeseries`).

use loki::core::privacy_level::PrivacyLevel;
use loki::net::client::HttpClient;
use loki::net::http::{Method, Request, StatusCode};
use loki::server::{build_router, serve, AppState, SubmitRequest};
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::response::Response;
use loki::survey::survey::{Survey, SurveyBuilder, SurveyId};
use loki::survey::QuestionId;
use std::sync::Arc;

fn lecturer_survey() -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(1), "lecturers");
    b.question("rate L1", QuestionKind::likert5(), false);
    b.build().unwrap()
}

fn start() -> (loki::net::server::ServerHandle, HttpClient, Arc<AppState>) {
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let c = HttpClient::new(&h.base_url()).unwrap();
    (h, c, state)
}

fn submit_body(user: &str, value: f64) -> String {
    let mut response = Response::new(user, SurveyId(1));
    response.answer(QuestionId(0), Answer::Obfuscated(value));
    serde_json::to_string(&SubmitRequest {
        user: user.into(),
        privacy_level: PrivacyLevel::Medium,
        response,
        releases: vec![(
            "survey-1/q0".into(),
            loki::dp::accountant::ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        )],
    })
    .unwrap()
}

/// Asserts a response carries the unified `{"error":{"code","message"}}`
/// envelope with the given code, and returns the message.
fn assert_envelope(resp: &loki::net::http::Response, code: &str) -> String {
    let v: serde_json::Value = serde_json::from_slice(&resp.body)
        .unwrap_or_else(|e| panic!("non-JSON error body {:?}: {e}", resp.body));
    assert_eq!(v["error"]["code"], code, "body: {v}");
    let msg = v["error"]["message"].as_str().expect("message is a string");
    assert!(!msg.is_empty());
    msg.to_string()
}

#[test]
fn every_error_class_uses_the_envelope() {
    let (h, c, _) = start();

    // 400: handler-level bad path parameter.
    let resp = c.get("/v1/surveys/abc").unwrap();
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    assert_envelope(&resp, "bad_param");

    // 404: router-level unknown route.
    let resp = c.get("/v1/nope").unwrap();
    assert_eq!(resp.status, StatusCode::NOT_FOUND);
    assert_envelope(&resp, "not_found");

    // 404: handler-level unknown resource.
    let resp = c.get("/v1/surveys/99").unwrap();
    assert_eq!(resp.status, StatusCode::NOT_FOUND);
    assert_envelope(&resp, "unknown_survey");

    // 405: route exists, method does not.
    let resp = c.send(Request::new(Method::Delete, "/v1/surveys")).unwrap();
    assert_eq!(resp.status, StatusCode::METHOD_NOT_ALLOWED);
    assert_envelope(&resp, "method_not_allowed");

    // 422: malformed JSON body.
    let resp = c
        .post("/v1/surveys/1/responses", "application/json", "{broken")
        .unwrap();
    assert_eq!(resp.status, StatusCode::UNPROCESSABLE);
    assert_envelope(&resp, "invalid_json");
    h.shutdown();
}

#[test]
fn parser_level_413_uses_the_envelope() {
    // A tiny body cap makes the parser itself reject the request, before
    // any handler runs — the envelope must still apply (the router's
    // error renderer is shared with the connection loop).
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    let config = loki::net::server::ServerConfig {
        parser: loki::net::parser::ParserConfig {
            max_body: 64,
            ..Default::default()
        },
        ..Default::default()
    };
    let h = loki::net::server::Server::spawn(
        "127.0.0.1:0",
        build_router(Arc::clone(&state)),
        config,
    )
    .unwrap();
    let c = HttpClient::new(&h.base_url()).unwrap();

    let resp = c
        .post(
            "/v1/surveys/1/responses",
            "application/json",
            "x".repeat(1000),
        )
        .unwrap();
    assert_eq!(resp.status, StatusCode::PAYLOAD_TOO_LARGE);
    assert_envelope(&resp, "payload_too_large");
    h.shutdown();
}

#[test]
fn metrics_expose_the_serving_path_end_to_end() {
    let dir = std::env::temp_dir().join(format!(
        "loki-api-v1-metrics-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let state = Arc::new(AppState::new());
    state.attach_journal(loki::server::wal::Wal::open(&dir.join("wal.jsonl")).unwrap());
    state.add_survey(lecturer_survey()).unwrap();
    // A budget small enough that a second submission is rejected.
    state.set_epsilon_budget(Some(1.0)).unwrap();
    let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let c = HttpClient::new(&h.base_url()).unwrap();

    // Traffic: one stored submission, then enough repeats by the same
    // user to blow the ε cap and count a budget rejection.
    let resp = c
        .post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
        .unwrap();
    assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
    let mut saw_budget_rejection = false;
    for i in 0..8 {
        // Same user again: duplicate detection is per-survey, so publish
        // a fresh survey per round until the ε cap trips.
        let sid = SurveyId(100 + i);
        let mut b = SurveyBuilder::new(sid, format!("extra-{i}"));
        b.question("q", QuestionKind::likert5(), false);
        state.add_survey(b.build().unwrap()).unwrap();
        let mut response = Response::new("u1", sid);
        response.answer(QuestionId(0), Answer::Obfuscated(4.0));
        let body = serde_json::to_string(&SubmitRequest {
            user: "u1".into(),
            privacy_level: PrivacyLevel::Medium,
            response,
            releases: vec![(
                format!("survey-{}/q0", sid.0),
                loki::dp::accountant::ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        })
        .unwrap();
        let resp = c
            .post(&format!("/v1/surveys/{}/responses", sid.0), "application/json", body)
            .unwrap();
        if resp.status == StatusCode::FORBIDDEN {
            assert_envelope(&resp, "budget_exhausted");
            saw_budget_rejection = true;
            break;
        }
        assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
    }
    assert!(saw_budget_rejection, "ε cap of 1.0 never tripped");

    // A 404 so the 4xx class is populated.
    let _ = c.get("/v1/nope").unwrap();

    let resp = c.get("/v1/metrics").unwrap();
    assert!(resp.status.is_success());
    assert_eq!(
        resp.headers.get("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8")
    );
    let text = String::from_utf8_lossy(&resp.body).to_string();

    // Request counters by method and status class.
    assert!(
        text.contains(r#"loki_http_requests_total{method="POST",class="2xx"}"#),
        "{text}"
    );
    assert!(
        text.contains(r#"loki_http_requests_total{method="GET",class="4xx"}"#),
        "{text}"
    );

    // Timing histograms from every serving layer.
    for family in [
        "loki_http_parse_seconds",
        "loki_http_dispatch_seconds",
        "loki_submit_seconds",
        "loki_wal_write_seconds",
        "loki_wal_fsync_seconds",
        "loki_store_lock_seconds",
    ] {
        assert!(
            text.contains(&format!("# TYPE {family} histogram")),
            "missing family {family} in:\n{text}"
        );
        assert!(
            !text.contains(&format!("{family}_count 0")),
            "family {family} never observed:\n{text}"
        );
    }

    // The paper-facing counters: budget cap rejections and per-level
    // submission counts.
    assert!(text.contains("loki_budget_rejections_total 1"), "{text}");
    assert!(
        text.contains(r#"loki_submissions_total{level="medium"}"#),
        "{text}"
    );

    // Ledger ε gauges refresh on scrape (§3.1 cumulative-loss tracking).
    assert!(text.contains(r#"loki_ledger_epsilon{stat="max"}"#), "{text}");
    assert!(text.contains("loki_ledger_users 1"), "{text}");
    assert!(text.contains("loki_ledger_unbounded_users 0"), "{text}");

    // Exposition is structurally valid Prometheus text: every sample line
    // names a family that was declared with # TYPE.
    let mut typed = std::collections::HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            typed.insert(rest.split_whitespace().next().unwrap().to_string());
        }
    }
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name = line
            .split(|ch: char| ch == '{' || ch == ' ')
            .next()
            .unwrap()
            .trim_end_matches("_bucket")
            .trim_end_matches("_count")
            .trim_end_matches("_sum");
        assert!(
            typed.contains(name),
            "sample {line:?} has no # TYPE declaration"
        );
    }

    // The access log is path-sanitized: user ids never appear.
    let resp = c.get("/v1/ledger/u1").unwrap();
    assert!(resp.status.is_success());
    let log = c.get("/v1/accesslog").unwrap();
    let log_text = String::from_utf8_lossy(&log.body).to_string();
    assert!(log_text.contains("path=/v1/ledger/:p"), "{log_text}");
    assert!(!log_text.contains("u1"), "user id leaked: {log_text}");

    h.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn legacy_aliases_are_byte_identical_to_v1() {
    let (h, c, _) = start();
    let resp = c
        .post("/surveys/1/responses", "application/json", submit_body("u1", 4.0))
        .unwrap();
    assert_eq!(resp.status, StatusCode::CREATED);

    // Success paths.
    for path in [
        "/health",
        "/surveys",
        "/surveys/1",
        "/surveys/1/results/0",
        "/stats",
        "/ledger/u1",
    ] {
        let legacy = c.get(path).unwrap();
        let v1 = c.get(&format!("/v1{path}")).unwrap();
        assert_eq!(legacy.status, v1.status, "{path}");
        assert_eq!(legacy.body, v1.body, "alias drift on {path}");
        // The alias answers byte-identically but is marked deprecated,
        // pointing at its /v1 twin; the twin carries neither header.
        assert_eq!(legacy.headers.get("deprecation"), Some("true"), "{path}");
        let successor = format!("/v1{path}");
        assert_eq!(
            legacy.headers.get("successor-version"),
            Some(successor.as_str()),
            "{path}"
        );
        assert_eq!(v1.headers.get("deprecation"), None, "{path}");
        assert_eq!(v1.headers.get("successor-version"), None, "{path}");
    }

    // Error paths must alias identically too — modulo the per-request
    // trace id every envelope now carries.
    for path in ["/surveys/abc", "/surveys/99", "/surveys/1/results/5"] {
        let legacy = c.get(path).unwrap();
        let v1 = c.get(&format!("/v1{path}")).unwrap();
        assert_eq!(legacy.status, v1.status, "{path}");
        let mut l: serde_json::Value = serde_json::from_slice(&legacy.body).unwrap();
        let mut v: serde_json::Value = serde_json::from_slice(&v1.body).unwrap();
        for body in [&mut l, &mut v] {
            let id = body["error"]["trace_id"].as_str().expect("trace id in envelope");
            assert_eq!(id.len(), 16, "{id}");
            body["error"]["trace_id"] = serde_json::Value::Null;
        }
        assert_eq!(l, v, "error alias drift on {path}");
    }
    h.shutdown();
}

#[test]
fn healthz_reports_build_info_without_a_journal() {
    let (h, c, _) = start();
    let resp = c.get("/v1/healthz").unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["status"], "ok");
    assert_eq!(v["version"], env!("CARGO_PKG_VERSION"));
    assert!(v["uptime_seconds"].is_u64());
    assert_eq!(v["journal"]["attached"], false);
    assert_eq!(v["journal"]["poisoned"], false);
    h.shutdown();
}

#[test]
fn head_healthz_advertises_length_without_body() {
    let (h, c, _) = start();
    let get = c.get("/v1/healthz").unwrap();
    assert_eq!(get.status, StatusCode::OK);

    // HEAD rides the GET handler: same status, same advertised length,
    // zero body octets on the wire.
    let head = c.head("/v1/healthz").unwrap();
    assert_eq!(head.status, StatusCode::OK);
    assert!(head.body.is_empty(), "HEAD body must be suppressed");
    let advertised = head.headers.content_length().expect("Content-Length kept");
    assert!(advertised > 0);
    assert_eq!(
        head.headers.get("content-type"),
        get.headers.get("content-type")
    );
    h.shutdown();
}

#[test]
fn metrics_expose_reactor_families() {
    let (h, c, _) = start();
    // One request so the reactor has accepted and woken at least once.
    let _ = c.get("/v1/healthz").unwrap();
    let resp = c.get("/v1/metrics").unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let text = String::from_utf8_lossy(&resp.body).into_owned();
    assert!(text.contains("loki_net_open_conns"), "{text}");
    assert!(text.contains("loki_net_open_conns{shard=\"0\"}"), "{text}");
    assert!(text.contains("loki_net_reactor_wakeups_total"), "{text}");
    // The scrape itself arrives over a connection the reactor counts.
    let open: f64 = text
        .lines()
        .find_map(|l| l.strip_prefix("loki_net_open_conns "))
        .and_then(|v| v.parse().ok())
        .expect("aggregate open-conns gauge rendered");
    assert!(open >= 1.0, "scraping connection not counted: {open}");
    h.shutdown();
}

#[test]
#[cfg(target_os = "linux")]
fn healthz_degrades_when_the_journal_poisons() {
    // /dev/full accepts opens but fails every write with ENOSPC.
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    state.attach_journal(
        loki::server::wal::Wal::open(std::path::Path::new("/dev/full")).unwrap(),
    );
    let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let c = HttpClient::new(&h.base_url()).unwrap();

    // Attached and healthy before any write fails.
    let resp = c.get("/v1/healthz").unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["journal"]["attached"], true);
    assert_eq!(v["journal"]["poisoned"], false);

    // The first durable write fails and poisons the journal.
    let resp = c
        .post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
        .unwrap();
    assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    assert_envelope(&resp, "durability");

    let resp = c.get("/v1/healthz").unwrap();
    assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["status"], "degraded");
    assert_eq!(v["journal"]["poisoned"], true);
    assert!(
        v["journal"]["error"].as_str().unwrap().contains("io"),
        "{v}"
    );
    h.shutdown();
}

#[test]
fn trace_header_resolves_to_the_group_commit_span_tree() {
    let dir = std::env::temp_dir().join(format!(
        "loki-api-v1-traces-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let state = Arc::new(AppState::new());
    state.attach_journal(loki::server::wal::Wal::open(&dir.join("wal.jsonl")).unwrap());
    state.add_survey(lecturer_survey()).unwrap();
    let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let c = HttpClient::new(&h.base_url()).unwrap();

    let fetch_tree = |trace_id: &str| -> serde_json::Value {
        let resp = c.get(&format!("/v1/traces/{trace_id}")).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
        serde_json::from_slice(&resp.body).unwrap()
    };
    let batch_id_of = |tree: &serde_json::Value| -> (u64, u64) {
        let spans = tree["spans"].as_array().unwrap();
        let find = |name: &str| {
            spans
                .iter()
                .find(|s| s["name"] == name)
                .unwrap_or_else(|| panic!("missing span {name}: {spans:?}"))
        };
        let root = find("request");
        let batch = find("batch");
        let fsync = find("fsync");
        // Tree shape: enqueue, batch, apply and ack hang off the root;
        // the fsync nests under its batch.
        for name in ["enqueue", "batch", "apply", "ack"] {
            assert_eq!(find(name)["parent"], root["id"], "{name} parent");
        }
        assert_eq!(fsync["parent"], batch["id"], "fsync nests under batch");
        let batch_id = batch["attrs"]["batch_id"].as_u64().expect("batch_id attr");
        let batch_size = batch["attrs"]["batch_size"].as_u64().expect("batch_size attr");
        (batch_id, batch_size)
    };

    // Request #1 draws tracer sequence 0: sampled under the default
    // sample-every-16th policy.
    let resp = c
        .post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
        .unwrap();
    assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
    let first_id = resp
        .headers
        .get("x-loki-trace-id")
        .expect("trace id on response")
        .to_string();
    let (first_batch, first_size) = batch_id_of(&fetch_tree(&first_id));
    assert!(first_batch >= 1);
    assert!(first_size >= 1);

    // Advance the tracer to sequence 15, then submit again at sequence
    // 16 — sampled again, and committed in a strictly later batch.
    for _ in 0..15 {
        c.get("/v1/health").unwrap();
    }
    let resp = c
        .post("/v1/surveys/1/responses", "application/json", submit_body("u2", 3.0))
        .unwrap();
    assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
    let second_id = resp
        .headers
        .get("x-loki-trace-id")
        .expect("trace id on response")
        .to_string();
    let (second_batch, _) = batch_id_of(&fetch_tree(&second_id));
    assert!(
        second_batch > first_batch,
        "later commit in a later batch ({first_batch} → {second_batch})"
    );

    h.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn budget_cap_rejection_produces_a_matching_audit_event() {
    let (h, c, state) = start();
    // One medium-level release costs far more than ε = 1: the first
    // submission charges, and a second survey's submission hits the cap.
    state.set_epsilon_budget(Some(1.0)).unwrap();
    let resp = c
        .post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
        .unwrap();
    assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);

    let sid = SurveyId(2);
    let mut b = SurveyBuilder::new(sid, "extra");
    b.question("q", QuestionKind::likert5(), false);
    state.add_survey(b.build().unwrap()).unwrap();
    let mut response = Response::new("u1", sid);
    response.answer(QuestionId(0), Answer::Obfuscated(4.0));
    let body = serde_json::to_string(&SubmitRequest {
        user: "u1".into(),
        privacy_level: PrivacyLevel::Medium,
        response,
        releases: vec![(
            "survey-2/q0".into(),
            loki::dp::accountant::ReleaseKind::Gaussian {
                sigma: 1.0,
                sensitivity: 4.0,
            },
        )],
    })
    .unwrap();
    let resp = c
        .post("/v1/surveys/2/responses", "application/json", body)
        .unwrap();
    assert_eq!(resp.status, StatusCode::FORBIDDEN, "{:?}", resp.body);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["error"]["code"], "budget_exhausted");
    let trace_id = v["error"]["trace_id"].as_str().expect("trace id").to_string();

    let resp = c.get("/v1/audit").unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    let events = v["events"].as_array().unwrap();
    let last = events.last().expect("audit events recorded");
    assert_eq!(last["outcome"], "rejected-at-cap");
    assert_eq!(last["level"], "medium");
    assert_eq!(last["trace_id"], trace_id.as_str());
    assert!(last["subject_index"].is_u64());
    // Opaque index only — the raw user id must never reach the stream.
    assert!(
        !String::from_utf8_lossy(&resp.body).contains("u1"),
        "raw id leaked into the audit rendering"
    );
    h.shutdown();
}

/// The tentpole E2E: a synthetic 5xx incident drives the availability
/// SLO through its whole lifecycle — Ok → Pending → Firing (healthz
/// `degraded` with a healthy journal) → Resolved → Ok — observed purely
/// through the public `/v1/alerts`, `/v1/alerts/history`, `/v1/healthz`
/// and `/v1/timeseries` endpoints.
#[test]
#[cfg(target_os = "linux")]
fn availability_slo_fires_and_resolves_through_the_alert_endpoints() {
    use loki::obs::{BurnRule, SloKind, SloSpec, TraceConfig, TsdbConfig};
    use loki::server::{HistoryConfig, ServerMetrics};
    use std::time::{Duration, Instant};

    // Windows scaled to a 25 ms scrape tick: the long window is 1 s of
    // history, breaches must persist 2 ticks before paging, and burning
    // at 1× the 50%-error budget is already a page.
    let history = HistoryConfig {
        tsdb: TsdbConfig::default(),
        slo_specs: vec![SloSpec {
            name: "availability".to_string(),
            objective: 0.9,
            kind: SloKind::ErrorRatio {
                bad_name: "loki_http_requests_total".to_string(),
                bad_filter: "class=\"5xx\"".to_string(),
                total_name: "loki_http_requests_total".to_string(),
                total_filter: String::new(),
            },
            rules: vec![BurnRule {
                long_ticks: 40,
                short_ticks: 20,
                factor: 1.0,
            }],
            pending_ticks: 2,
            exemplar_family: Some("loki_submit_seconds".to_string()),
        }],
        alert_history: 64,
    };
    let state = Arc::new(AppState::new());
    state.add_survey(lecturer_survey()).unwrap();
    state.enable_metrics_with(Arc::new(ServerMetrics::with_configs(
        TraceConfig::default(),
        history,
    )));
    state.start_self_scraper(Duration::from_millis(25));
    // /dev/full poisons the journal on the first durable write: every
    // submission from then on is a 503.
    state.attach_journal(
        loki::server::wal::Wal::open(std::path::Path::new("/dev/full")).unwrap(),
    );
    let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let c = HttpClient::new(&h.base_url()).unwrap();

    // Quiescent start: nothing firing, healthz happy.
    let resp = c.get("/v1/alerts").unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["firing"], false, "{v}");

    // --- Incident: a storm of failing (503) slow submits --------------
    let deadline = Instant::now() + Duration::from_secs(30);
    let firing = loop {
        assert!(Instant::now() < deadline, "availability SLO never fired");
        let resp = c
            .post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
            .unwrap();
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE, "{:?}", resp.body);
        let resp = c.get("/v1/alerts").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        if v["firing"] == true {
            break v;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let alert = &firing["alerts"].as_array().unwrap()[0];
    assert_eq!(alert["slo"], "availability");
    assert_eq!(alert["state"], "firing");
    assert!(alert["burn_long"].as_f64().unwrap() >= 1.0, "{firing}");

    // --- healthz: degraded on the SLO axis alone ----------------------
    // Detach the poisoned journal immediately; the journal axis is
    // healthy again but the SLO is still burning through its window, so
    // healthz must stay degraded on the alert engine's say-so.
    state.detach_journal();
    let resp = c.get("/v1/healthz").unwrap();
    assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["status"], "degraded", "{v}");
    assert_eq!(v["journal"]["poisoned"], false, "{v}");
    assert_eq!(v["slo"]["firing"].as_array().unwrap()[0], "availability", "{v}");

    // The state machine walked Ok → Pending → Firing, and the paging
    // transition carries the trace id of a violating submit exemplar.
    let resp = c.get("/v1/alerts/history").unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    let events = v["events"].as_array().unwrap();
    let transitions: Vec<(&str, &str)> = events
        .iter()
        .map(|e| (e["from"].as_str().unwrap(), e["to"].as_str().unwrap()))
        .collect();
    assert!(transitions.contains(&("ok", "pending")), "{v}");
    assert!(transitions.contains(&("pending", "firing")), "{v}");
    let fired = events.iter().find(|e| e["to"] == "firing").unwrap();
    let exemplar = fired["trace_id"].as_str().expect("exemplar trace id");
    assert_eq!(exemplar.len(), 16, "{exemplar}");

    // --- Recovery: good traffic until the alert resolves --------------
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut fresh = 0u64;
    loop {
        assert!(Instant::now() < deadline, "availability SLO never resolved");
        // A fresh user each round: all-2xx traffic (a repeat user would
        // trip duplicate detection and 409).
        fresh += 1;
        let resp = c
            .post(
                "/v1/surveys/1/responses",
                "application/json",
                submit_body(&format!("r{fresh}"), 4.0),
            )
            .unwrap();
        assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
        let resp = c.get("/v1/alerts/history").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let done = v["events"].as_array().unwrap().iter().any(|e| {
            e["slo"] == "availability" && e["from"] == "firing" && e["to"] == "resolved"
        });
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    // Resolved decays to Ok on a later clear tick, and healthz recovers.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "healthz never recovered");
        let resp = c.get("/v1/healthz").unwrap();
        if resp.status == StatusCode::OK {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // --- The tsdb covered the incident --------------------------------
    // Submit latency history: one series, non-empty, downsampled (step
    // 4) with bin-local aggregates present.
    let resp = c
        .get("/v1/timeseries?name=loki_submit_seconds_count&since=0&step=4")
        .unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    let series = v["series"].as_array().unwrap();
    assert_eq!(series.len(), 1, "{v}");
    let points = series[0]["points"].as_array().unwrap();
    assert!(!points.is_empty(), "{v}");
    let observed: f64 = points.iter().map(|p| p["last"].as_f64().unwrap()).sum();
    assert!(observed >= 2.0, "incident + recovery submits in history: {v}");
    for p in points {
        assert!(p["count"].as_u64().unwrap() >= 1, "{v}");
        assert!(p["min"].as_f64().unwrap() <= p["max"].as_f64().unwrap(), "{v}");
    }
    // And the 5xx request-class series recorded the outage itself.
    let resp = c
        .get("/v1/timeseries?name=loki_http_requests_total&label=5xx")
        .unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert!(!v["series"].as_array().unwrap().is_empty(), "{v}");

    h.shutdown();
    state.stop_self_scraper();
}

fn demographics_survey(id: u64) -> Survey {
    let mut b = SurveyBuilder::new(SurveyId(id), "about you");
    b.question("Day of the month you were born", QuestionKind::Numeric { min: 1, max: 31 }, true);
    b.question("Month you were born", QuestionKind::Numeric { min: 1, max: 12 }, true);
    b.question("Year you were born", QuestionKind::Numeric { min: 1900, max: 2020 }, true);
    b.question(
        "What is your gender?",
        QuestionKind::MultipleChoice { options: vec!["Female".into(), "Male".into()] },
        true,
    );
    b.question("What is your zip code?", QuestionKind::Numeric { min: 0, max: 99999 }, true);
    b.build().unwrap()
}

fn demographics_response(user: &str, survey: u64, day: f64, zip: f64) -> Response {
    let mut r = Response::new(user, SurveyId(survey));
    r.answer(QuestionId(0), Answer::Obfuscated(day));
    r.answer(QuestionId(1), Answer::Obfuscated(6.0));
    r.answer(QuestionId(2), Answer::Obfuscated(1990.0));
    r.answer(QuestionId(3), Answer::Choice(0));
    r.answer(QuestionId(4), Answer::Obfuscated(zip));
    r
}

fn submit_demographics(c: &HttpClient, user: &str, survey: u64, day: f64, zip: f64) {
    let body = serde_json::to_string(&SubmitRequest {
        user: user.into(),
        privacy_level: PrivacyLevel::None,
        response: demographics_response(user, survey, day, zip),
        releases: vec![],
    })
    .unwrap();
    let resp = c
        .post(&format!("/v1/surveys/{survey}/responses"), "application/json", body)
        .unwrap();
    assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
}

#[test]
fn privacy_endpoint_matches_an_offline_linkage_run() {
    use loki::attack::{KAnonymity, Linker};
    use loki::platform::spec::{QuestionSemantics, SurveySpec};
    use loki::survey::response::ResponseSet;

    let (h, c, state) = start();
    state.add_survey(demographics_survey(2)).unwrap();

    // Cohorts of sizes 4, 2, 1, 1 (day/zip collisions define the QI):
    // at_risk 2, complete 8.
    let population: &[(&str, f64, f64)] = &[
        ("a1", 14.0, 11111.0),
        ("a2", 14.0, 11111.0),
        ("a3", 14.0, 11111.0),
        ("a4", 14.0, 11111.0),
        ("b1", 7.0, 22222.0),
        ("b2", 7.0, 22222.0),
        ("solo1", 3.0, 33333.0),
        ("solo2", 28.0, 44444.0),
    ];
    for &(user, day, zip) in population {
        submit_demographics(&c, user, 2, day, zip);
    }

    // Offline ground truth: the same responses through the batch linkage
    // attack from `crates/attack`, classified with the same semantics
    // the observatory infers at publish time.
    let survey = demographics_survey(2);
    let spec = SurveySpec {
        semantics: survey
            .questions
            .iter()
            .map(|q| QuestionSemantics::infer(q).expect("all questions are QI"))
            .collect(),
        survey,
    };
    let mut set = ResponseSet::new();
    for &(user, day, zip) in population {
        set.push(demographics_response(user, 2, day, zip));
    }
    let mut linker = Linker::new();
    linker.ingest(&spec, &set);
    let offline = KAnonymity::of_linker(&linker);
    assert_eq!(offline.complete, 8, "fixture sanity");
    assert_eq!(offline.at_risk, 2);

    // The live endpoint must agree with the offline run on every field.
    let resp = c.get("/v1/privacy").unwrap();
    assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["k_anonymity"]["complete"], offline.complete, "{v}");
    assert_eq!(v["k_anonymity"]["cohorts"], offline.cohorts, "{v}");
    assert_eq!(v["k_anonymity"]["at_risk"], offline.at_risk, "{v}");
    let histogram: Vec<(u64, u64)> = v["k_anonymity"]["histogram"]
        .as_array()
        .unwrap()
        .iter()
        .map(|e| (e["k"].as_u64().unwrap(), e["subjects"].as_u64().unwrap()))
        .collect();
    let expected: Vec<(u64, u64)> = offline.histogram.iter().map(|(k, m)| (*k, *m)).collect();
    assert_eq!(histogram, expected, "{v}");
    assert_eq!(v["at_risk_ratio"].as_f64().unwrap(), offline.at_risk_ratio(), "{v}");
    assert_eq!(v["linkage_entropy_bits"].as_f64().unwrap(), offline.entropy_bits, "{v}");
    h.shutdown();
}

#[test]
fn privacy_at_risk_slo_fires_and_resolves_through_the_alert_endpoints() {
    use loki::obs::{BurnRule, SloKind, SloSpec, TraceConfig, TsdbConfig};
    use loki::server::{HistoryConfig, ServerMetrics};
    use std::time::{Duration, Instant};

    // Same windowing recipe as the availability test, but the objective
    // is the observatory's gauge: at most 5% of linkable subjects may be
    // unique in their quasi-identifier cohort.
    let history = HistoryConfig {
        tsdb: TsdbConfig::default(),
        slo_specs: vec![SloSpec {
            name: "privacy-at-risk".to_string(),
            objective: 0.95,
            kind: SloKind::GaugeLevel {
                name: "loki_privacy_at_risk_ratio".to_string(),
                filter: String::new(),
            },
            rules: vec![BurnRule {
                long_ticks: 40,
                short_ticks: 20,
                factor: 1.0,
            }],
            pending_ticks: 2,
            exemplar_family: None,
        }],
        alert_history: 64,
    };
    let state = Arc::new(AppState::new());
    state.add_survey(demographics_survey(2)).unwrap();
    state.enable_metrics_with(Arc::new(ServerMetrics::with_configs(
        TraceConfig::default(),
        history,
    )));
    state.start_self_scraper(Duration::from_millis(25));
    let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    let c = HttpClient::new(&h.base_url()).unwrap();

    // --- Incident: every linkable subject is unique (ratio 1.0) -------
    submit_demographics(&c, "alice", 2, 14.0, 11111.0);
    submit_demographics(&c, "bob", 2, 7.0, 22222.0);
    let deadline = Instant::now() + Duration::from_secs(30);
    let firing = loop {
        assert!(Instant::now() < deadline, "privacy-at-risk SLO never fired");
        let resp = c.get("/v1/alerts").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        if v["firing"] == true {
            break v;
        }
        std::thread::sleep(Duration::from_millis(10));
    };
    let alert = &firing["alerts"].as_array().unwrap()[0];
    assert_eq!(alert["slo"], "privacy-at-risk");
    assert_eq!(alert["state"], "firing");

    // A firing privacy SLO degrades the health surface like any other.
    let resp = c.get("/v1/healthz").unwrap();
    assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["status"], "degraded", "{v}");
    assert_eq!(v["slo"]["firing"].as_array().unwrap()[0], "privacy-at-risk", "{v}");

    // --- Recovery: grow alice's cohort until at-risk < 5% -------------
    // 30 more subjects sharing alice's quasi-identifier leave only bob
    // unique: ratio 1/32 ≈ 0.031, under the 5% error budget.
    for i in 0..30 {
        submit_demographics(&c, &format!("crowd{i}"), 2, 14.0, 11111.0);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "privacy-at-risk SLO never resolved");
        let resp = c.get("/v1/alerts/history").unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let done = v["events"].as_array().unwrap().iter().any(|e| {
            e["slo"] == "privacy-at-risk" && e["from"] == "firing" && e["to"] == "resolved"
        });
        if done {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "healthz never recovered");
        if c.get("/v1/healthz").unwrap().status == StatusCode::OK {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }

    // The gauge's history covered the whole arc, and the k-anonymity
    // buckets are live in the exposition.
    let resp = c
        .get("/v1/timeseries?name=loki_privacy_at_risk_ratio&since=0&step=1")
        .unwrap();
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert!(!v["series"].as_array().unwrap().is_empty(), "{v}");
    let text = String::from_utf8(c.get("/v1/metrics").unwrap().body).unwrap();
    assert!(text.contains("loki_privacy_k_anon_bucket"), "{text}");
    assert!(text.contains("loki_privacy_subjects 32"), "{text}");

    h.shutdown();
    state.stop_self_scraper();
}

#[test]
fn legacy_requests_count_into_their_own_metric() {
    let (h, c, _) = start();
    // Three legacy hits; everything else in this test goes through /v1.
    for path in ["/surveys", "/stats", "/health"] {
        assert!(c.get(path).unwrap().status.is_success(), "{path}");
    }
    let resp = c.get("/v1/metrics").unwrap();
    let text = String::from_utf8_lossy(&resp.body).to_string();
    assert!(text.contains("# TYPE loki_http_legacy_requests_total counter"), "{text}");
    assert!(text.contains("loki_http_legacy_requests_total 3"), "{text}");
    h.shutdown();
}

#[test]
fn admin_shards_reports_occupancy_and_routing() {
    let (h, c, state) = start();
    let resp = c
        .post("/v1/surveys/1/responses", "application/json", submit_body("u1", 4.0))
        .unwrap();
    assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);

    let resp = c.get("/v1/admin/shards").unwrap();
    assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    let n = v["num_shards"].as_u64().unwrap() as usize;
    assert_eq!(n, state.num_shards(), "{v}");
    let shards = v["shards"].as_array().unwrap();
    assert_eq!(shards.len(), n, "{v}");
    // Exactly one survey, one submission, one ledger user — somewhere.
    let sum = |key: &str| -> u64 {
        shards.iter().map(|s| s[key].as_u64().unwrap()).sum()
    };
    assert_eq!(sum("surveys"), 1, "{v}");
    assert_eq!(sum("submissions"), 1, "{v}");
    assert_eq!(sum("ledger_users"), 1, "{v}");
    // And on the shard the router says survey 1 lives on.
    let home = state.shard_of_survey(SurveyId(1));
    assert_eq!(shards[home]["surveys"], 1, "{v}");
    assert_eq!(shards[home]["submissions"], 1, "{v}");
    for (i, s) in shards.iter().enumerate() {
        assert_eq!(s["shard"].as_u64().unwrap() as usize, i, "{v}");
        assert!(s["user_locks_len"].is_u64(), "{v}");
        assert_eq!(s["wal"]["attached"], false, "no journal in this fixture: {v}");
        assert_eq!(s["wal"]["depth"], 0, "{v}");
        assert_eq!(s["wal"]["poisoned"], serde_json::Value::Null, "{v}");
    }

    // Routing preview answers from the hash alone — the id need not
    // exist — and agrees with the store's own router.
    let resp = c.get("/v1/admin/shards?survey_id=123").unwrap();
    assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert_eq!(v["routing"]["survey_id"], 123, "{v}");
    assert_eq!(
        v["routing"]["shard"].as_u64().unwrap() as usize,
        state.shard_of_survey(SurveyId(123)),
        "{v}"
    );

    // A malformed preview id draws the standard envelope.
    let resp = c.get("/v1/admin/shards?survey_id=abc").unwrap();
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    assert_envelope(&resp, "bad_param");
    h.shutdown();
}

#[test]
fn survey_listing_paginates_with_opaque_cursors() {
    let (h, c, state) = start();
    for id in 2..=7u64 {
        let mut b = SurveyBuilder::new(SurveyId(id), format!("s{id}"));
        b.question("q", QuestionKind::likert5(), false);
        state.add_survey(b.build().unwrap()).unwrap();
    }

    // Unpaginated calls keep today's bare-array shape: all seven
    // surveys, ascending by id, no envelope.
    let resp = c.get("/v1/surveys").unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    let all = v.as_array().expect("bare array without ?limit=");
    let ids: Vec<u64> = all.iter().map(|s| s["id"].as_u64().unwrap()).collect();
    assert_eq!(ids, (1..=7).collect::<Vec<_>>(), "{v}");

    // Paginated walk in pages of 3: same ids, same order, opaque
    // cursors, `next` null on the last page.
    let mut walked = Vec::new();
    let mut after: Option<String> = None;
    for _page in 0..10 {
        let path = match &after {
            None => "/v1/surveys?limit=3".to_string(),
            Some(cursor) => format!("/v1/surveys?limit=3&after={cursor}"),
        };
        let resp = c.get(&path).unwrap();
        assert_eq!(resp.status, StatusCode::OK, "{:?}", resp.body);
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let page = v["surveys"].as_array().expect("cursor envelope");
        assert!(page.len() <= 3, "{v}");
        walked.extend(page.iter().map(|s| s["id"].as_u64().unwrap()));
        match v["next"].as_str() {
            Some(cursor) => {
                // Opaque token: fixed-width hex, not a raw survey id.
                assert_eq!(cursor.len(), 16, "{cursor}");
                assert!(cursor.chars().all(|ch| ch.is_ascii_hexdigit()), "{cursor}");
                after = Some(cursor.to_string());
            }
            None => break,
        }
    }
    assert_eq!(walked, (1..=7).collect::<Vec<_>>());

    // Bad inputs draw the standard envelope.
    let resp = c.get("/v1/surveys?limit=0").unwrap();
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    assert_envelope(&resp, "bad_param");
    let resp = c.get("/v1/surveys?limit=x").unwrap();
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    assert_envelope(&resp, "bad_param");
    let resp = c.get("/v1/surveys?limit=3&after=nonsense").unwrap();
    assert_eq!(resp.status, StatusCode::BAD_REQUEST);
    assert_envelope(&resp, "bad_cursor");
    h.shutdown();
}

#[test]
fn healthz_reports_process_resources() {
    let (h, c, _) = start();
    let resp = c.get("/v1/healthz").unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    let resources = &v["resources"];
    assert!(resources.is_object(), "{v}");
    assert!(resources["available"].is_boolean(), "{v}");
    if cfg!(target_os = "linux") {
        assert_eq!(resources["available"], true, "{v}");
        assert!(resources["rss_bytes"].as_u64().unwrap() > 0, "{v}");
        assert!(resources["open_fds"].as_u64().unwrap() > 0, "{v}");
        assert!(resources["threads"].as_u64().unwrap() >= 1, "{v}");
    }
    h.shutdown();
}

#[test]
fn procstats_reports_resources_and_alloc_totals() {
    let (h, c, _) = start();
    let resp = c.get("/v1/procstats").unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    assert!(
        resp.headers.get("x-loki-trace-id").is_some(),
        "trace id stamped on /v1/procstats"
    );
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    assert!(v["available"].is_boolean(), "{v}");
    // The alloc block always renders; the totals are only non-zero when
    // the bin installs the counting allocator (the test bin does not).
    assert!(v["alloc"]["counting"].is_boolean(), "{v}");
    assert!(v["alloc"]["allocs_total"].is_u64(), "{v}");
    assert!(v["alloc"]["frees_total"].is_u64(), "{v}");
    assert!(v["alloc"]["bytes_total"].is_u64(), "{v}");
    if cfg!(target_os = "linux") {
        assert!(v["rss_bytes"].as_u64().unwrap() > 0, "{v}");
        assert!(v["utime_ticks"].is_u64(), "{v}");
        assert!(v["stime_ticks"].is_u64(), "{v}");
    }

    // The resource families ride the exposition after any scrape.
    let resp = c.get("/v1/metrics").unwrap();
    let text = String::from_utf8_lossy(&resp.body).into_owned();
    assert!(text.contains("loki_proc_rss_bytes"), "{text}");
    assert!(text.contains("loki_proc_open_fds"), "{text}");
    assert!(text.contains("loki_proc_threads"), "{text}");
    assert!(text.contains("loki_alloc_allocs_total"), "{text}");
    assert!(text.contains("loki_proc_cpu_ticks_total{mode=\"user\"}"), "{text}");
    assert!(text.contains("loki_net_accepted_total{shard=\"0\"}"), "{text}");
    assert!(text.contains("loki_net_conns_shed_total{shard=\"0\"}"), "{text}");
    h.shutdown();
}

#[test]
fn profile_attributes_sampled_time_under_submit_load() {
    let (h, c, _) = start();

    // Concurrent submit load while the process-wide 97 Hz sampler runs:
    // reactor shards tag reactor.* phases, the submit path tags store.*.
    let base = h.base_url();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let workers: Vec<_> = (0..2)
        .map(|w| {
            let base = base.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let c = HttpClient::new(&base).unwrap();
                let mut i = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let user = format!("prof-w{w}-{i}");
                    i += 1;
                    let resp = c
                        .post("/v1/surveys/1/responses", "application/json", submit_body(&user, 4.0))
                        .unwrap();
                    assert_eq!(resp.status, StatusCode::CREATED, "{:?}", resp.body);
                }
            })
        })
        .collect();

    // Poll /v1/profile until the sampler has accumulated enough ticks
    // for a stable attribution ratio (the sampler is process-global, so
    // a parallel test binary invocation only ever adds samples).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let v = loop {
        let resp = c.get("/v1/profile").unwrap();
        assert_eq!(resp.status, StatusCode::OK);
        assert!(
            resp.headers.get("x-loki-trace-id").is_some(),
            "trace id stamped on /v1/profile"
        );
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        if v["total_samples"].as_u64().unwrap() >= 30 {
            break v;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sampler never accumulated samples: {v}"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    };
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    assert_eq!(v["hz"].as_u64().unwrap(), 97, "{v}");
    assert!(v["ticks"].as_u64().unwrap() > 0, "{v}");
    let threads = v["threads"].as_array().expect("thread profiles");
    assert!(
        threads.iter().any(|t| t["thread"] == "net.reactor"),
        "reactor shards registered: {v}"
    );
    // The PR's acceptance bar: >=95% of sampled wall-clock time lands in
    // a declared phase (everything except the "untagged" sentinel).
    let total = v["total_samples"].as_u64().unwrap();
    let attributed = v["attributed_samples"].as_u64().unwrap();
    assert!(
        attributed as f64 >= 0.95 * total as f64,
        "attribution {attributed}/{total}: {v}"
    );

    // The collapsed-stack rendering is plain text flamegraph input:
    // `thread/ordinal;phase count` lines.
    let resp = c.get("/v1/profile?format=collapsed").unwrap();
    assert_eq!(resp.status, StatusCode::OK);
    let text = String::from_utf8_lossy(&resp.body).into_owned();
    assert!(
        text.lines().any(|l| l.starts_with("net.reactor/")),
        "{text}"
    );
    for line in text.lines() {
        let (stack, count) = line.rsplit_once(' ').expect("stack count");
        assert!(stack.contains('/') && stack.contains(';'), "{line}");
        assert!(count.parse::<u64>().is_ok(), "{line}");
    }
    h.shutdown();
}
