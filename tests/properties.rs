//! Property-based tests over the core invariants, spanning crates.

use loki::core::obfuscate::Obfuscator;
use loki::core::privacy_level::PrivacyLevel;
use loki::dp::mechanisms::gaussian::{analytic_delta, GaussianMechanism};
use loki::dp::mechanisms::randomized_response::RandomizedResponse;
use loki::dp::params::{Delta, Epsilon};
use loki::dp::Sensitivity;
use loki::net::http::{Method, Request};
use loki::net::parser::RequestParser;
use loki::survey::demographics::{BirthDate, StarSign};
use loki::survey::question::{Answer, Question, QuestionKind};
use loki::survey::QuestionId;
use bytes::BytesMut;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

proptest! {
    /// The analytic Gaussian δ is monotone decreasing in σ for any
    /// sensitivity and ε.
    #[test]
    fn analytic_delta_monotone_in_sigma(
        sens in 0.5f64..10.0,
        eps in 0.05f64..5.0,
        sigma in 0.1f64..5.0,
    ) {
        let s = Sensitivity::new(sens);
        let e = Epsilon::new(eps);
        let d1 = analytic_delta(s, sigma, e).value();
        let d2 = analytic_delta(s, sigma * 1.5, e).value();
        prop_assert!(d2 <= d1 + 1e-12, "δ grew with σ: {d1} -> {d2}");
    }

    /// Calibration round-trip: calibrate σ for (ε, δ), recover ε from σ.
    #[test]
    fn gaussian_calibration_round_trip(eps in 0.1f64..6.0) {
        let s = Sensitivity::new(4.0);
        let delta = Delta::new(1e-5);
        let m = GaussianMechanism::calibrate_analytic(s, Epsilon::new(eps), delta);
        let back = m.epsilon().value();
        prop_assert!((back - eps).abs() / eps < 1e-3, "{eps} -> {back}");
    }

    /// Randomized response likelihood ratio equals e^ε for any k, ε.
    #[test]
    fn rr_ratio_is_exp_epsilon(k in 2usize..20, eps in 0.05f64..5.0) {
        let rr = RandomizedResponse::new(k, Epsilon::new(eps));
        let ratio = rr.p_truth() / rr.p_other();
        prop_assert!((ratio - eps.exp()).abs() < 1e-9);
    }

    /// RR probabilities are a distribution.
    #[test]
    fn rr_probabilities_normalize(k in 2usize..20, eps in 0.05f64..5.0) {
        let rr = RandomizedResponse::new(k, Epsilon::new(eps));
        let total = rr.p_truth() + (k as f64 - 1.0) * rr.p_other();
        prop_assert!((total - 1.0).abs() < 1e-12);
    }

    /// Every valid (day, month) has a star sign, and the mapping is
    /// stable under BirthDate round-trips.
    #[test]
    fn star_signs_total_and_consistent(doy in 0u16..365) {
        let d = BirthDate::from_day_of_year(1980, doy);
        let s1 = d.star_sign();
        let s2 = StarSign::from_day_month(d.day, d.month);
        prop_assert_eq!(s1, s2);
        prop_assert_eq!(d.day_of_year(), doy);
    }

    /// Obfuscated ratings at level None are exactly the input; at other
    /// levels they are finite.
    #[test]
    fn obfuscation_totality(raw in 1u8..=5, seed in 0u64..1000) {
        let q = Question {
            id: QuestionId(0),
            text: "r".into(),
            kind: QuestionKind::likert5(),
            sensitive: false,
        };
        let mut rng = ChaCha20Rng::seed_from_u64(seed);
        for level in PrivacyLevel::ALL {
            let ob = Obfuscator::new(level)
                .obfuscate_answer(&mut rng, &q, &Answer::Rating(f64::from(raw)))
                .unwrap();
            let v = ob.answer.as_f64().unwrap();
            prop_assert!(v.is_finite());
            if level == PrivacyLevel::None {
                prop_assert_eq!(v, f64::from(raw));
            }
        }
    }

    /// HTTP request serialization → parsing round-trips the method, path,
    /// headers and body for arbitrary token-ish inputs.
    #[test]
    fn http_request_round_trip(
        path_seg in "[a-z]{1,12}",
        header_val in "[ -~&&[^\r\n:]]{0,30}",
        body in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let path = format!("/{path_seg}");
        let mut wire = Vec::new();
        wire.extend_from_slice(format!("POST {path} HTTP/1.1\r\n").as_bytes());
        wire.extend_from_slice(format!("X-Test: {header_val}\r\n").as_bytes());
        wire.extend_from_slice(format!("Content-Length: {}\r\n\r\n", body.len()).as_bytes());
        wire.extend_from_slice(&body);

        let mut buf = BytesMut::from(&wire[..]);
        let parsed = RequestParser::default().parse(&mut buf).unwrap().unwrap();
        prop_assert_eq!(parsed.method, Method::Post);
        prop_assert_eq!(parsed.path, path);
        prop_assert_eq!(parsed.headers.get("x-test").unwrap_or(""), header_val.trim());
        prop_assert_eq!(&parsed.body[..], &body[..]);
        prop_assert!(buf.is_empty());
    }

    /// The parser never panics on arbitrary bytes — it returns Ok(None),
    /// Ok(Some), or a structured error.
    #[test]
    fn parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut buf = BytesMut::from(&bytes[..]);
        let _ = RequestParser::default().parse(&mut buf);
    }

    /// Query parameters survive the Request constructor.
    #[test]
    fn query_param_extraction(k in "[a-z]{1,8}", v in "[a-z0-9]{1,8}") {
        let r = Request::new(Method::Get, format!("/p?{k}={v}"));
        prop_assert_eq!(r.query_param(&k), Some(v.as_str()));
    }
}

proptest! {
    /// The deconvolver always returns a probability distribution with the
    /// right support, whatever the (finite) sample mix.
    #[test]
    fn deconvolver_output_is_distribution(
        values in proptest::collection::vec(-5.0f64..11.0, 1..80),
        sigma in 0.0f64..3.0,
    ) {
        use loki::core::deconvolve::{Deconvolver, NoisySample};
        let samples: Vec<NoisySample> = values
            .iter()
            .map(|&value| NoisySample { value, sigma })
            .collect();
        let out = Deconvolver::new(1, 5).run(&samples);
        prop_assert_eq!(out.probabilities.len(), 5);
        prop_assert!((out.probabilities.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        prop_assert!(out.probabilities.iter().all(|p| (0.0..=1.0).contains(p)));
        prop_assert!((1.0..=5.0).contains(&out.mean));
    }

    /// Marketplace campaigns replay exactly for equal seeds and diverge
    /// for different ones (statistically; we only require equality).
    #[test]
    fn marketplace_is_deterministic(seed in 0u64..500) {
        use loki::platform::behavior::BehaviorModel;
        use loki::platform::marketplace::{Marketplace, MarketplaceConfig};
        use loki::platform::spec::paper_surveys;
        use loki::platform::worker::{HealthProfile, PrivacyAttitude, WorkerId, WorkerProfile};
        use loki::survey::demographics::{BirthDate, Gender, QuasiIdentifier, ZipCode};

        let pool = || -> Vec<(WorkerProfile, BehaviorModel)> {
            (0..25u64).map(|i| {
                (
                    WorkerProfile::new(
                        WorkerId(i),
                        QuasiIdentifier {
                            birth: BirthDate::new(1970 + (i % 20) as u16, 1 + (i % 12) as u8, 1 + (i % 28) as u8).unwrap(),
                            gender: if i % 2 == 0 { Gender::Female } else { Gender::Male },
                            zip: ZipCode::new(10_000 + i as u32).unwrap(),
                        },
                        HealthProfile { smoking_level: 1, cough_level: 1 },
                        PrivacyAttitude { aware_of_profiling: false, would_participate_if_profiled: false },
                    ),
                    BehaviorModel::Honest { opinion_noise: 0.3 },
                )
            }).collect()
        };
        let run = |s: u64| {
            let mut m = Marketplace::new(MarketplaceConfig::default(), pool(), s);
            let specs = paper_surveys();
            let out = m.post_task(&specs[0], 15);
            (out.responses.len(), out.elapsed_hours, m.costs().total_cents())
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// WAL records of arbitrary obfuscated submissions round-trip.
    #[test]
    fn wal_record_round_trip(
        user in "[a-z]{1,10}",
        value in -10.0f64..15.0,
        sigma in 0.01f64..4.0,
    ) {
        use loki::server::wal::Record;
        use loki::survey::response::Response;
        use loki::survey::SurveyId;
        let mut response = Response::new(user.clone(), SurveyId(1));
        response.answer(QuestionId(0), Answer::Obfuscated(value));
        let record = Record::Submit {
            user,
            level: PrivacyLevel::Medium,
            response,
            releases: vec![("survey-1/q0".into(), loki::dp::accountant::ReleaseKind::Gaussian {
                sigma,
                sensitivity: 4.0,
            })],
        };
        let json = serde_json::to_string(&record).unwrap();
        let back: Record = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(record, back);
    }

    /// Subsampling amplification never hurts and keeps ε positive.
    #[test]
    fn subsampling_never_hurts(eps in 0.01f64..8.0, q in 0.01f64..1.0) {
        use loki::dp::composition::amplify_by_subsampling;
        use loki::dp::params::PrivacyLoss;
        let loss = PrivacyLoss::new(eps, 1e-6);
        let amp = amplify_by_subsampling(loss, q).unwrap();
        prop_assert!(amp.epsilon.value() <= eps + 1e-12);
        prop_assert!(amp.epsilon.value() > 0.0);
        prop_assert!(amp.delta.value() <= 1e-6 + 1e-18);
    }
}

/// Non-proptest statistical property: the RR frequency estimator is
/// unbiased across privacy levels (fixed seeds, tight tolerance).
#[test]
fn rr_estimator_unbiased_across_levels() {
    for level in [PrivacyLevel::Low, PrivacyLevel::Medium, PrivacyLevel::High] {
        let eps = level.randomized_response_epsilon().unwrap();
        let rr = RandomizedResponse::new(3, Epsilon::new(eps));
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        let n = 150_000;
        let mut observed = [0u64; 3];
        for i in 0..n {
            let truth = if i % 4 == 0 { 1 } else { 0 }; // 75% / 25% / 0%
            observed[rr.perturb(&mut rng, truth)] += 1;
        }
        let est = rr.estimate_frequencies(&observed);
        assert!(
            (est[0] / n as f64 - 0.75).abs() < 0.02,
            "{level}: est {:?}",
            est
        );
        assert!((est[2] / n as f64).abs() < 0.02);
    }
}
