//! Failure injection: the server must survive hostile and broken clients
//! without panicking, leaking state, or serving corrupted answers.

use loki::net::http::{Response, StatusCode};
use loki::net::parser::ParserConfig;
use loki::net::router::Router;
use loki::net::server::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server() -> ServerHandle {
    let mut r = Router::new();
    r.get("/ping", |_, _| Response::text(StatusCode::OK, "pong"));
    r.post("/echo", |req, _| {
        Response::text(StatusCode::OK, String::from_utf8_lossy(&req.body).into_owned())
    });
    Server::spawn(
        "127.0.0.1:0",
        r,
        ServerConfig {
            read_timeout: Duration::from_millis(400),
            parser: ParserConfig {
                max_body: 4096,
                max_request_line: 512,
                max_header_bytes: 2048,
                max_headers: 16,
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The canary: after any abuse, a normal request must still work.
fn still_alive(h: &ServerHandle) {
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.ends_with("pong"), "server unhealthy after abuse: {out}");
}

#[test]
fn survives_random_binary_garbage() {
    let h = server();
    for seed in 0..20u64 {
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Deterministic pseudo-garbage.
        let garbage: Vec<u8> = (0..300)
            .map(|i| ((seed.wrapping_mul(31).wrapping_add(i) * 2654435761) >> 7) as u8)
            .collect();
        let _ = s.write_all(&garbage);
        let _ = s.write_all(b"\r\n\r\n");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        // Any response is fine (4xx expected); crashing is not.
    }
    still_alive(&h);
    h.shutdown();
}

#[test]
fn survives_mid_request_disconnects() {
    let h = server();
    for cut in [5usize, 17, 30, 45] {
        let full = b"POST /echo HTTP/1.1\r\nContent-Length: 20\r\n\r\n01234567890123456789";
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(&full[..cut.min(full.len())]).unwrap();
        drop(s); // abrupt close mid-request
    }
    still_alive(&h);
    h.shutdown();
}

#[test]
fn slow_loris_is_timed_out() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /ping HTT").unwrap();
    // Stall past the server's read timeout.
    std::thread::sleep(Duration::from_millis(700));
    // The server should have dropped us; either write fails eventually or
    // read returns EOF / error.
    let mut buf = [0u8; 64];
    s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    match s.read(&mut buf) {
        Ok(0) => {}          // clean close
        Ok(_) => {}          // error response also acceptable
        Err(_) => {}         // reset
    }
    still_alive(&h);
    h.shutdown();
}

#[test]
fn oversized_request_line_is_rejected_not_buffered() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    // Stream an endless request line; the server must cut us off at the
    // limit rather than buffering forever.
    let chunk = [b'a'; 256];
    let mut rejected = false;
    s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    let _ = s.write_all(b"GET /");
    for _ in 0..64 {
        if s.write_all(&chunk).is_err() {
            rejected = true;
            break;
        }
        let mut buf = [0u8; 256];
        match s.read(&mut buf) {
            Ok(n) if n > 0 => {
                let head = String::from_utf8_lossy(&buf[..n]).to_string();
                assert!(head.contains("431"), "expected 431, got: {head}");
                rejected = true;
                break;
            }
            Ok(_) => {
                rejected = true;
                break;
            }
            Err(_) => continue,
        }
    }
    assert!(rejected, "server buffered an unbounded request line");
    still_alive(&h);
    h.shutdown();
}

#[test]
fn header_bomb_is_rejected() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    let mut req = b"GET /ping HTTP/1.1\r\n".to_vec();
    for i in 0..100 {
        req.extend_from_slice(format!("X-Bomb-{i}: {}\r\n", "v".repeat(50)).as_bytes());
    }
    req.extend_from_slice(b"\r\n");
    let _ = s.write_all(&req);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(
        out.starts_with("HTTP/1.1 431"),
        "expected 431 for header bomb, got: {}",
        out.lines().next().unwrap_or("<nothing>")
    );
    still_alive(&h);
    h.shutdown();
}

#[test]
fn pipelined_valid_then_garbage() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /ping HTTP/1.1\r\n\r\nNOT-HTTP-AT-ALL\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    // First response served, then a 400 and close.
    assert!(out.contains("pong"), "{out}");
    assert!(out.contains("400"), "{out}");
    still_alive(&h);
    h.shutdown();
}
