//! Failure injection: the server must survive hostile and broken clients
//! without panicking, leaking state, or serving corrupted answers.

use loki::net::http::{Response, StatusCode};
use loki::net::parser::ParserConfig;
use loki::net::router::Router;
use loki::net::server::{Server, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn server() -> ServerHandle {
    let mut r = Router::new();
    r.get("/ping", |_, _| Response::text(StatusCode::OK, "pong"));
    r.post("/echo", |req, _| {
        Response::text(StatusCode::OK, String::from_utf8_lossy(&req.body).into_owned())
    });
    Server::spawn(
        "127.0.0.1:0",
        r,
        ServerConfig {
            read_timeout: Duration::from_millis(400),
            parser: ParserConfig {
                max_body: 4096,
                max_request_line: 512,
                max_header_bytes: 2048,
                max_headers: 16,
            },
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// The canary: after any abuse, a normal request must still work.
fn still_alive(h: &ServerHandle) {
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /ping HTTP/1.1\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    assert!(out.ends_with("pong"), "server unhealthy after abuse: {out}");
}

#[test]
fn survives_random_binary_garbage() {
    let h = server();
    for seed in 0..20u64 {
        let mut s = TcpStream::connect(h.addr()).unwrap();
        // Deterministic pseudo-garbage.
        let garbage: Vec<u8> = (0..300)
            .map(|i| ((seed.wrapping_mul(31).wrapping_add(i) * 2654435761) >> 7) as u8)
            .collect();
        let _ = s.write_all(&garbage);
        let _ = s.write_all(b"\r\n\r\n");
        let mut out = Vec::new();
        let _ = s.read_to_end(&mut out);
        // Any response is fine (4xx expected); crashing is not.
    }
    still_alive(&h);
    h.shutdown();
}

#[test]
fn survives_mid_request_disconnects() {
    let h = server();
    for cut in [5usize, 17, 30, 45] {
        let full = b"POST /echo HTTP/1.1\r\nContent-Length: 20\r\n\r\n01234567890123456789";
        let mut s = TcpStream::connect(h.addr()).unwrap();
        s.write_all(&full[..cut.min(full.len())]).unwrap();
        drop(s); // abrupt close mid-request
    }
    still_alive(&h);
    h.shutdown();
}

#[test]
fn slow_loris_is_timed_out() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /ping HTT").unwrap();
    // Stall past the server's read timeout.
    std::thread::sleep(Duration::from_millis(700));
    // The server should have dropped us; either write fails eventually or
    // read returns EOF / error.
    let mut buf = [0u8; 64];
    s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    match s.read(&mut buf) {
        Ok(0) => {}          // clean close
        Ok(_) => {}          // error response also acceptable
        Err(_) => {}         // reset
    }
    still_alive(&h);
    h.shutdown();
}

#[test]
fn oversized_request_line_is_rejected_not_buffered() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    // Stream an endless request line; the server must cut us off at the
    // limit rather than buffering forever.
    let chunk = [b'a'; 256];
    let mut rejected = false;
    s.set_read_timeout(Some(Duration::from_millis(500))).unwrap();
    let _ = s.write_all(b"GET /");
    for _ in 0..64 {
        if s.write_all(&chunk).is_err() {
            rejected = true;
            break;
        }
        let mut buf = [0u8; 256];
        match s.read(&mut buf) {
            Ok(n) if n > 0 => {
                let head = String::from_utf8_lossy(&buf[..n]).to_string();
                assert!(head.contains("431"), "expected 431, got: {head}");
                rejected = true;
                break;
            }
            Ok(_) => {
                rejected = true;
                break;
            }
            Err(_) => continue,
        }
    }
    assert!(rejected, "server buffered an unbounded request line");
    still_alive(&h);
    h.shutdown();
}

#[test]
fn header_bomb_is_rejected() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    let mut req = b"GET /ping HTTP/1.1\r\n".to_vec();
    for i in 0..100 {
        req.extend_from_slice(format!("X-Bomb-{i}: {}\r\n", "v".repeat(50)).as_bytes());
    }
    req.extend_from_slice(b"\r\n");
    let _ = s.write_all(&req);
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    assert!(
        out.starts_with("HTTP/1.1 431"),
        "expected 431 for header bomb, got: {}",
        out.lines().next().unwrap_or("<nothing>")
    );
    still_alive(&h);
    h.shutdown();
}

#[test]
fn pipelined_valid_then_garbage() {
    let h = server();
    let mut s = TcpStream::connect(h.addr()).unwrap();
    s.write_all(b"GET /ping HTTP/1.1\r\n\r\nNOT-HTTP-AT-ALL\r\n\r\n")
        .unwrap();
    let mut out = String::new();
    let _ = s.read_to_string(&mut out);
    // First response served, then a 400 and close.
    assert!(out.contains("pong"), "{out}");
    assert!(out.contains("400"), "{out}");
    still_alive(&h);
    h.shutdown();
}

/// Crash-point fault injection for the WAL-first write pipeline: the
/// store's contract is journal → apply → ack, so a crash at any point
/// must leave the journal replayable to a state consistent with every
/// ack the clients received.
mod durability {
    use loki::core::privacy_level::PrivacyLevel;
    use loki::dp::accountant::ReleaseKind;
    use loki::server::store::{CrashPoint, SubmitError};
    use loki::server::wal::{replay, Wal};
    use loki::server::AppState;
    use loki::survey::question::{Answer, QuestionKind};
    use loki::survey::response::Response;
    use loki::survey::survey::{Survey, SurveyBuilder, SurveyId};
    use loki::survey::QuestionId;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::Arc;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("loki-crashpoint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn survey() -> Survey {
        let mut b = SurveyBuilder::new(SurveyId(1), "crash");
        b.question("rate", QuestionKind::likert5(), false);
        b.build().unwrap()
    }

    fn submission(user: &str) -> (Response, Vec<(String, ReleaseKind)>) {
        let mut r = Response::new(user, SurveyId(1));
        r.answer(QuestionId(0), Answer::Obfuscated(4.1));
        (
            r,
            vec![(
                "survey-1/q0".into(),
                ReleaseKind::Gaussian {
                    sigma: 1.0,
                    sensitivity: 4.0,
                },
            )],
        )
    }

    /// Installs a hook that panics at `point`, simulating a process kill
    /// exactly there.
    fn kill_at(state: &AppState, point: CrashPoint) {
        state.set_crash_hook(Some(Arc::new(move |p| {
            if p == point {
                panic!("injected crash at {p:?}");
            }
        })));
    }

    #[test]
    fn kill_between_fsync_and_apply_loses_no_durable_record() {
        let path = tmp("fsync-then-die.jsonl");
        let _ = std::fs::remove_file(&path);
        let state = AppState::new();
        state.attach_journal(Wal::open(&path).unwrap());
        state.add_survey(survey()).unwrap();

        kill_at(&state, CrashPoint::AfterDurableBeforeApply);
        let (resp, rel) = submission("alice");
        let crash = catch_unwind(AssertUnwindSafe(|| {
            state.submit("alice", PrivacyLevel::Medium, resp, &rel)
        }));
        assert!(crash.is_err(), "the injected crash must fire");
        state.set_crash_hook(None);

        // The crash hit after fsync but before apply: nothing reached
        // memory, no ack was produced...
        assert_eq!(state.submission_count(SurveyId(1)), 0);
        assert_eq!(state.accountant.releases_of("alice"), 0);

        // ...but the record is durable: replay recovers it. Un-acked work
        // surviving a crash is allowed by the contract (the client
        // retries and gets 409); acked work vanishing is not.
        state.detach_journal();
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.submission_count(SurveyId(1)), 1);
        assert_eq!(replayed.accountant.releases_of("alice"), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kill_between_apply_and_ack_converges_on_retry() {
        let path = tmp("apply-then-die.jsonl");
        let _ = std::fs::remove_file(&path);
        let state = AppState::new();
        state.attach_journal(Wal::open(&path).unwrap());
        state.add_survey(survey()).unwrap();

        kill_at(&state, CrashPoint::AfterApplyBeforeAck);
        let (resp, rel) = submission("bob");
        let crash = catch_unwind(AssertUnwindSafe(|| {
            state.submit("bob", PrivacyLevel::Medium, resp, &rel)
        }));
        assert!(crash.is_err(), "the injected crash must fire");
        state.set_crash_hook(None);
        state.detach_journal();

        // The record was applied and is durable; the client never saw
        // the ack. After restart-from-journal, the client's retry must
        // be refused as a duplicate and the ledger charged exactly once.
        let replayed = replay(&path).unwrap();
        assert_eq!(replayed.submission_count(SurveyId(1)), 1);
        assert_eq!(replayed.accountant.releases_of("bob"), 1);
        let (resp, rel) = submission("bob");
        assert_eq!(
            replayed
                .submit("bob", PrivacyLevel::Medium, resp, &rel)
                .unwrap_err(),
            SubmitError::Duplicate
        );
        assert_eq!(replayed.accountant.releases_of("bob"), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_acked_submission_survives_replay() {
        // The ack ⊆ replay invariant under concurrency: whatever was
        // acked to a client before the "crash" (journal detach) must be
        // in the replayed state.
        let path = tmp("acked-subset.jsonl");
        let _ = std::fs::remove_file(&path);
        let state = Arc::new(AppState::new());
        state.attach_journal(Wal::open(&path).unwrap());
        state.add_survey(survey()).unwrap();

        let threads: Vec<_> = (0..4)
            .map(|t| {
                let state = Arc::clone(&state);
                std::thread::spawn(move || {
                    let mut acked = Vec::new();
                    for i in 0..15 {
                        let user = format!("t{t}-u{i}");
                        let (resp, rel) = submission(&user);
                        if state.submit(&user, PrivacyLevel::Low, resp, &rel).is_ok() {
                            acked.push(user);
                        }
                    }
                    acked
                })
            })
            .collect();
        let acked: Vec<String> = threads
            .into_iter()
            .flat_map(|t| t.join().unwrap())
            .collect();
        assert_eq!(acked.len(), 60);

        state.detach_journal(); // joins the committer: the "crash"
        let replayed = replay(&path).unwrap();
        for user in &acked {
            assert!(
                replayed.has_submitted(SurveyId(1), user),
                "acked submission for {user} lost by replay"
            );
            assert_eq!(replayed.accountant.releases_of(user), 1, "{user}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn disk_failure_is_a_503_envelope_not_a_silent_ack() {
        use loki::net::client::HttpClient;
        use loki::server::{serve, SubmitRequest};

        let state = Arc::new(AppState::new());
        state.add_survey(survey()).unwrap(); // before the bad journal
        // /dev/full: every append fails with ENOSPC.
        state.attach_journal(Wal::open(std::path::Path::new("/dev/full")).unwrap());
        let h = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
        let c = HttpClient::new(&h.base_url()).unwrap();

        let (response, releases) = submission("carol");
        let body = serde_json::to_string(&SubmitRequest {
            user: "carol".into(),
            privacy_level: PrivacyLevel::Medium,
            response,
            releases,
        })
        .unwrap();
        let resp = c
            .post("/v1/surveys/1/responses", "application/json", body)
            .unwrap();
        assert_eq!(resp.status.0, 503, "{:?}", String::from_utf8_lossy(&resp.body));
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        assert_eq!(v["error"]["code"], "durability");

        // Nothing was applied, and the failure is counted.
        assert_eq!(state.submission_count(SurveyId(1)), 0);
        assert_eq!(state.accountant.releases_of("carol"), 0);
        let metrics = String::from_utf8_lossy(&c.get("/v1/metrics").unwrap().body).to_string();
        assert!(
            metrics.contains("loki_wal_errors_total 1"),
            "wal error not counted: {metrics}"
        );
        h.shutdown();
    }
}
