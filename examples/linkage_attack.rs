//! The §2 attack as a narrative walkthrough: four innocuous surveys, a
//! stable worker ID, and a voter-roll join later, "anonymous" health
//! answers carry names. A compact version of the EXP-1 harness.
//!
//! ```sh
//! cargo run --example linkage_attack
//! ```

use loki::attack::inference::HealthInferenceRule;
use loki::attack::population::{Population, PopulationConfig};
use loki::attack::registry::Registry;
use loki::attack::reident::Reidentifier;
use loki::attack::Linker;
use loki::platform::behavior::BehaviorModel;
use loki::platform::marketplace::{Marketplace, MarketplaceConfig};
use loki::platform::spec::paper_surveys;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    println!("== Step 0: the world ==");
    let pop = Population::synthesize(
        PopulationConfig::default(),
        &mut ChaCha20Rng::seed_from_u64(42),
    );
    let registry = Registry::from_population(&pop, 0.85);
    println!(
        "{} people; {:.0}% unique under (birth date, gender, ZIP); registry covers 85%",
        pop.len(),
        pop.uniqueness_rate() * 100.0
    );

    println!("\n== Step 1: pose as a harmless requester, post four surveys ==");
    let mut rng = ChaCha20Rng::seed_from_u64(43);
    let workers = pop.sample_workers(300, &mut rng, |_, _| BehaviorModel::Honest {
        opinion_noise: 0.3,
    });
    let mut market = Marketplace::new(MarketplaceConfig::default(), workers, 44);
    let specs = paper_surveys();
    let mut linker = Linker::new();
    for spec in &specs[..4] {
        let outcome = market.post_task(spec, 300);
        println!(
            "  \"{}\" -> {} responses (${:.2} so far)",
            spec.survey.title,
            outcome.responses.len(),
            market.costs().total_dollars()
        );
        linker.ingest(spec, &outcome.responses);
    }

    println!("\n== Step 2: join by the platform's stable worker ID ==");
    let complete = linker.complete_dossiers().count();
    println!(
        "{} worker IDs observed; {} accumulated a full (DOB, gender, ZIP) triple",
        linker.unique_ids(),
        complete
    );

    println!("\n== Step 3: match against the registry ==");
    let (reids, stats) = Reidentifier::new(&registry).run(&linker);
    println!(
        "{} uniquely matched (de-anonymized), {} ambiguous, {} no match",
        stats.unique_matches, stats.ambiguous_matches, stats.no_matches
    );

    println!("\n== Step 4: read the 'anonymous' health answers, now with names ==");
    let exposures = HealthInferenceRule::default().infer_all(&reids);
    let risky: Vec<_> = exposures.iter().filter(|e| e.at_risk).collect();
    println!(
        "{} de-anonymized workers disclosed smoking/cough levels; {} flagged at-risk:",
        exposures.len(),
        risky.len()
    );
    for e in risky.iter().take(5) {
        println!(
            "  {} is likely at respiratory risk — smoking {:.0}/5, coughing {:.0}/5",
            registry.name_of(e.person).unwrap_or("?"),
            e.smoking_level,
            e.cough_level
        );
    }
    println!(
        "\ntotal cost: ${:.2}. The paper did this on AMT for < $30 — the defence is not\n\
         hiding the data better, it is never uploading exact answers at all (see the\n\
         quickstart and lecturer_survey examples for Loki's at-source obfuscation).",
        market.costs().total_dollars()
    );
}
