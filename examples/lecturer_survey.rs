//! The paper's §3.2 trial, end to end over HTTP: 131 students rate 13
//! lecturers with the empirical privacy-level uptake (18 none / 32 low /
//! 51 medium / 30 high), the server aggregates, and we compare the
//! recovered means to ground truth — the live-platform version of EXP-3.
//!
//! ```sh
//! cargo run --example lecturer_survey
//! ```

use loki::client::LokiClient;
use loki::core::privacy_level::PrivacyLevel;
use loki::dp::sampling;
use loki::server::{serve, AppState};
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::survey::{SurveyBuilder, SurveyId};
use loki::survey::QuestionId;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

const LECTURER_MEANS: [f64; 13] = [
    4.6, 3.8, 4.2, 3.1, 4.8, 3.5, 4.0, 2.8, 4.4, 3.9, 4.1, 3.3, 4.5,
];
const BIN_COUNTS: [usize; 4] = [18, 32, 51, 30];

fn main() {
    // One survey with a rating question per lecturer.
    let state = Arc::new(AppState::new());
    let mut b = SurveyBuilder::new(SurveyId(1), "Rate your lecturers (Loki trial)");
    for (i, _) in LECTURER_MEANS.iter().enumerate() {
        b.question(format!("Rate lecturer {}", i + 1), QuestionKind::likert5(), false);
    }
    state.add_survey(b.build().unwrap()).unwrap();
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).unwrap();
    println!(
        "trial server on {}; 131 students incoming (bins 18/32/51/30)",
        handle.base_url()
    );

    let mut rng = ChaCha20Rng::seed_from_u64(131);
    let mut student = 0usize;
    for (bin, &count) in BIN_COUNTS.iter().enumerate() {
        let level = PrivacyLevel::ALL[bin];
        for _ in 0..count {
            let mut app =
                LokiClient::connect(&handle.base_url(), format!("student-{student:03}")).unwrap();
            let survey = app.fetch_survey(SurveyId(1)).unwrap();
            // Personal bias shared across lecturers, like a real rater.
            let bias = sampling::gaussian(&mut rng, 0.0, 0.7);
            let mut answers = BTreeMap::new();
            for (l, &mean) in LECTURER_MEANS.iter().enumerate() {
                let idio: f64 = rng.gen_range(-0.4..0.4);
                let raw = (mean + bias + idio).round().clamp(1.0, 5.0);
                answers.insert(QuestionId(l as u32), Answer::Rating(raw));
            }
            app.submit(&mut rng, &survey, &answers, level).unwrap();
            student += 1;
        }
    }
    println!("all {} students submitted; querying results…\n", student);

    let http = loki::net::client::HttpClient::new(&handle.base_url()).unwrap();
    println!(
        "{:<9} {:>6} {:>10} {:>8} {:>8}",
        "lecturer", "true", "estimated", "err", "students"
    );
    let mut total_abs_err = 0.0;
    for (l, &truth) in LECTURER_MEANS.iter().enumerate() {
        let resp = http.get(&format!("/surveys/1/results/{l}")).unwrap();
        let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
        let est = v["pooled_mean"].as_f64().unwrap();
        total_abs_err += (est - truth).abs();
        println!(
            "{:<9} {:>6.2} {:>10.2} {:>+8.2} {:>8}",
            l + 1,
            truth,
            est,
            est - truth,
            v["n_total"].as_u64().unwrap()
        );
    }
    println!(
        "\nmean |error| across lecturers: {:.3} — the paper saw 0.11 for its example lecturer.",
        total_abs_err / LECTURER_MEANS.len() as f64
    );
    println!("every stored answer was noisy before it reached the server (at-source).");
    handle.shutdown();
}
