//! Quickstart: run a Loki server, take a survey through the app library,
//! preview the obfuscation (the Fig. 1(c) screen), submit, and read the
//! aggregate back.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use loki::client::LokiClient;
use loki::core::privacy_level::PrivacyLevel;
use loki::server::{serve, AppState};
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::survey::{SurveyBuilder, SurveyId};
use loki::survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;
use std::sync::Arc;

fn main() {
    // 1. Publish a survey on a fresh server.
    let state = Arc::new(AppState::new());
    let mut builder = SurveyBuilder::new(SurveyId(1), "Rate your lecturers");
    builder.question("Rate Prof. Ada on clarity", QuestionKind::likert5(), false);
    builder.question("Rate Prof. Ada on engagement", QuestionKind::likert5(), false);
    state.add_survey(builder.build().expect("valid survey")).expect("journal not attached");
    let handle = serve("127.0.0.1:0", Arc::clone(&state)).expect("bind server");
    println!("Loki server listening on {}", handle.base_url());

    // 2. A user opens the app and picks the MEDIUM privacy level.
    let mut rng = ChaCha20Rng::seed_from_u64(2013);
    let mut app = LokiClient::connect(&handle.base_url(), "alice").expect("connect");
    let listing = app.list_surveys().expect("list");
    println!("\nSurveys available ({}):", listing.len());
    for s in &listing {
        println!("  [{}] {} ({} questions, {}c)", s.id, s.title, s.questions, s.reward_cents);
    }
    let survey = app.fetch_survey(SurveyId(listing[0].id)).expect("fetch");

    // 3. True answers — these never leave the client.
    let mut answers = BTreeMap::new();
    answers.insert(QuestionId(0), Answer::Rating(5.0));
    answers.insert(QuestionId(1), Answer::Rating(4.0));

    // 4. Preview: what will actually be uploaded.
    let preview = app
        .preview(&mut rng, &survey, &answers, PrivacyLevel::Medium)
        .expect("preview");
    println!("\nUpload preview at privacy level 'medium' (σ = 1.0):");
    for (q, raw, noisy) in &preview.items {
        println!(
            "  {q}: true answer {:?} -> uploads as {:.2}",
            raw.as_f64().unwrap(),
            noisy.as_f64().unwrap()
        );
    }

    // 5. Submit (a fresh noise draw — the preview is just a preview).
    let outcome = app
        .submit(&mut rng, &survey, &answers, PrivacyLevel::Medium)
        .expect("submit");
    println!(
        "\nSubmitted. Server now holds {} response(s); cumulative privacy loss ε = {:.3}",
        outcome.stored,
        outcome.cumulative_epsilon.unwrap()
    );
    println!(
        "Local ledger agrees: ε = {:.3} (tracked without trusting the server)",
        app.local_loss().epsilon.value()
    );

    // 6. More users answer so the aggregate means something.
    for i in 0..30 {
        let mut other = LokiClient::connect(&handle.base_url(), format!("user-{i}")).unwrap();
        let level = PrivacyLevel::ALL[i % 4];
        let mut a = BTreeMap::new();
        a.insert(QuestionId(0), Answer::Rating(4.0 + f64::from(i as u8 % 2)));
        a.insert(QuestionId(1), Answer::Rating(4.0));
        other.submit(&mut rng, &survey, &a, level).unwrap();
    }

    // 7. Read the aggregate back over HTTP.
    let http = loki::net::client::HttpClient::new(&handle.base_url()).unwrap();
    let resp = http.get("/surveys/1/results/0").expect("results");
    let v: serde_json::Value = serde_json::from_slice(&resp.body).unwrap();
    println!(
        "\nAggregate for question 0: pooled mean {:.2} ± {:.2} over {} responses",
        v["pooled_mean"].as_f64().unwrap(),
        v["pooled_standard_error"].as_f64().unwrap(),
        v["n_total"].as_u64().unwrap()
    );
    for bin in v["bins"].as_array().unwrap() {
        println!(
            "  bin {:>6}: n={:<3} mean {:.2}",
            bin["level"].as_str().unwrap(),
            bin["n"].as_u64().unwrap(),
            bin["mean"].as_f64().unwrap()
        );
    }

    handle.shutdown();
    println!("\nServer shut down. Done.");
}
