//! Cumulative privacy-loss tracking and balancing (§3.1): a semester of
//! surveys over one user base, comparing naive recruitment against
//! Loki's least-loss balancer, and showing the RDP-tight ledger a single
//! heavy user would see in the app.
//!
//! ```sh
//! cargo run --example privacy_budget
//! ```

use loki::core::ledger::{AllocationStrategy, BudgetBalancer};
use loki::core::privacy_level::PrivacyLevel;
use loki::dp::accountant::{Accountant, ReleaseKind, UserLedger};
use loki::dp::params::Delta;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;

fn main() {
    let users: Vec<String> = (0..150).map(|i| format!("student-{i:03}")).collect();
    let release = ReleaseKind::Gaussian {
        sigma: PrivacyLevel::Medium.sigma(),
        sensitivity: 4.0,
    };

    println!("a semester: 25 surveys, 50 respondents each, 150-student pool\n");
    for (strategy, label) in [
        (AllocationStrategy::Uniform, "uniform recruitment"),
        (AllocationStrategy::LeastLoss, "least-loss balancer"),
    ] {
        let accountant = Accountant::new();
        let balancer = BudgetBalancer::new(strategy);
        let mut rng = ChaCha20Rng::seed_from_u64(7);
        for round in 0..25 {
            for user in balancer.select(&mut rng, &accountant, &users, 50) {
                accountant.record(&user, format!("survey-{round}"), release);
            }
        }
        let s = balancer.loss_summary(&accountant, &users);
        println!(
            "{label:<22} max ε = {:>7.2}   p95 ε = {:>7.2}   mean ε = {:>7.2}",
            s.max, s.p95, s.mean
        );
    }

    println!("\nwhat one heavy user's app shows (40 medium-privacy answers):");
    let mut ledger = UserLedger::new();
    for i in 0..40 {
        ledger.record(format!("survey-{}/q0", i), release);
    }
    let delta = Delta::new(loki::dp::DEFAULT_DELTA);
    println!(
        "  naive (basic composition): ε = {:.1}",
        ledger.basic_loss().epsilon.value()
    );
    println!(
        "  Loki ledger (RDP-tight):   ε = {:.1}  at δ = {:.0e}",
        ledger.tight_loss(delta).epsilon.value(),
        delta.value()
    );

    println!("\nper-answer cost of each privacy level (1-5 rating, δ = 1e-5):");
    for level in PrivacyLevel::ALL {
        let loss = level.privacy_loss(4.0);
        let eps = if loss.is_finite() {
            format!("{:.2}", loss.epsilon.value())
        } else {
            "∞ (no protection)".to_string()
        };
        println!("  {:<7} σ = {:<4}  ε = {eps}", level.to_string(), level.sigma());
    }
}
