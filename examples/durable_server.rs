//! Production-flavoured deployment: write-ahead journal, requester
//! authentication, per-user privacy budget, and an access log — then a
//! simulated crash and journal replay proving no accepted write is lost.
//!
//! ```sh
//! cargo run --example durable_server
//! ```

use loki::client::LokiClient;
use loki::core::privacy_level::PrivacyLevel;
use loki::net::server::{Server, ServerConfig};
use loki::server::{build_router, AppState};
use loki::survey::question::{Answer, QuestionKind};
use loki::survey::survey::{SurveyBuilder, SurveyId};
use loki::survey::QuestionId;
use rand::SeedableRng;
use rand_chacha::ChaCha20Rng;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

fn main() {
    let dir = std::env::temp_dir().join(format!("loki-durable-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal_path = dir.join("journal.jsonl");

    // --- First life of the server -------------------------------------
    let state = Arc::new(AppState::new());
    state.attach_journal(loki::server::wal::Wal::open(&wal_path).unwrap());
    state.add_requester_token("research-team-42");
    // Each medium answer costs ε ≈ 24.4; allow about three.
    state.set_epsilon_budget(Some(75.0)).unwrap();

    let requests = Arc::new(AtomicUsize::new(0));
    let config = ServerConfig {
        observer: Some({
            let requests = Arc::clone(&requests);
            Arc::new(move |req, resp| {
                requests.fetch_add(1, Ordering::Relaxed);
                eprintln!("access: {} {} -> {}", req.method, req.path, resp.status);
            })
        }),
        ..ServerConfig::default()
    };
    let handle = Server::spawn(
        "127.0.0.1:0",
        build_router(Arc::clone(&state)),
        config.clone(),
    )
    .unwrap();
    println!("server v1 on {} (journal: {})", handle.base_url(), wal_path.display());

    // Publish with the requester token (anonymous publish is refused).
    let mut survey_builder = SurveyBuilder::new(SurveyId(1), "Weekly check-in");
    survey_builder.question("How was this week?", QuestionKind::likert5(), false);
    let survey_json = serde_json::to_vec(&survey_builder.build().unwrap()).unwrap();
    let http = loki::net::client::HttpClient::new(&handle.base_url()).unwrap();
    let mut publish = loki::net::http::Request::new(loki::net::http::Method::Post, "/surveys")
        .with_body(survey_json);
    publish.headers.insert("Authorization", "Bearer research-team-42");
    assert!(http.send(publish).unwrap().status.is_success());

    // One user submits until the budget gate closes.
    let mut rng = ChaCha20Rng::seed_from_u64(4);
    let mut app = LokiClient::connect(&handle.base_url(), "heavy-user").unwrap();
    let survey = app.fetch_survey(SurveyId(1)).unwrap();
    let mut answers = BTreeMap::new();
    answers.insert(QuestionId(0), Answer::Rating(4.0));
    // The same user can answer a survey once, so publish a few more.
    for week in 2..=6 {
        let mut b = SurveyBuilder::new(SurveyId(week), format!("Weekly check-in #{week}"));
        b.question("How was this week?", QuestionKind::likert5(), false);
        let body = serde_json::to_vec(&b.build().unwrap()).unwrap();
        let mut req = loki::net::http::Request::new(loki::net::http::Method::Post, "/surveys")
            .with_body(body);
        req.headers.insert("Authorization", "Bearer research-team-42");
        http.send(req).unwrap();
    }
    let mut accepted = 0;
    for week in 1..=6u64 {
        let survey = if week == 1 {
            survey.clone()
        } else {
            app.fetch_survey(SurveyId(week)).unwrap()
        };
        match app.submit(&mut rng, &survey, &answers, PrivacyLevel::Medium) {
            Ok(out) => {
                accepted += 1;
                println!(
                    "week {week}: accepted (cumulative ε = {:.1})",
                    out.cumulative_epsilon.unwrap()
                );
            }
            Err(e) => {
                println!("week {week}: REFUSED — {e}");
                break;
            }
        }
    }
    println!(
        "budget gate closed after {accepted} submissions ({} HTTP requests logged)",
        requests.load(Ordering::Relaxed)
    );

    // --- Crash --------------------------------------------------------
    handle.shutdown();
    drop(state);
    println!("\n… server process 'crashes'; memory is gone. replaying the journal …\n");

    // --- Second life: replay ------------------------------------------
    let restored = Arc::new(loki::server::wal::replay(&wal_path).unwrap());
    println!(
        "replayed: {} surveys, {} submissions by heavy-user, cumulative ε = {:.1}",
        restored.surveys().len(),
        (1..=6u64)
            .map(|w| restored.submission_count(SurveyId(w)))
            .sum::<usize>(),
        restored.user_loss("heavy-user").epsilon.value()
    );
    let handle2 = Server::spawn("127.0.0.1:0", build_router(Arc::clone(&restored)), config).unwrap();
    let http2 = loki::net::client::HttpClient::new(&handle2.base_url()).unwrap();
    let resp = http2.get("/ledger/heavy-user").unwrap();
    println!(
        "server v2 answers /ledger/heavy-user: {}",
        String::from_utf8_lossy(&resp.body)
    );
    handle2.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}
